#include "svc/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>

#include <unistd.h>

#include "svc/wire.hpp"
#include "util/event_bus.hpp"
#include "util/store.hpp"
#include "util/telemetry.hpp"

namespace scanc::svc {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double now_s() { return static_cast<double>(now_ns()) * 1e-9; }

Json ok_resp(const char* op) {
  Json j = Json::object();
  j.set("ok", Json::boolean(true));
  j.set("op", Json::string(op));
  return j;
}

Json fail_resp(const char* kind, const std::string& message) {
  Json j = Json::object();
  j.set("ok", Json::boolean(false));
  j.set("kind", Json::string(kind));
  j.set("error", Json::string(message));
  return j;
}

std::string required_string(const Json& req, const char* key) {
  const Json* v = req.find(key);
  if (v == nullptr || !v->is_string()) {
    throw JobError(JobErrorKind::BadRequest,
                   std::string("missing string field \"") + key + '"');
  }
  return v->as_string();
}

Json event_to_json(const obs::Event& e) {
  Json j = Json::object();
  j.set("kind", Json::string(obs::to_string(e.kind)));
  j.set("job", Json::string(e.job));
  j.set("phase", Json::string(e.phase));
  j.set("seq", Json::integer(e.seq));
  j.set("t_us", Json::integer(e.t_us));
  j.set("faults", Json::integer(e.faults));
  j.set("value", Json::integer(e.value));
  j.set("note", Json::string(e.note));
  return j;
}

/// Inverse of event_to_json for snapshot reload; returns nullopt for a
/// malformed entry (that event is lost, not the snapshot).
std::optional<obs::Event> event_from_json(const Json& j) {
  try {
    obs::Event e;
    const Json* kind = j.find("kind");
    if (kind == nullptr || !kind->is_string()) return std::nullopt;
    e.kind = obs::event_kind_from(kind->as_string());
    if (e.kind == obs::EventKind::kCount) return std::nullopt;
    if (const Json* v = j.find("job"); v != nullptr && v->is_string()) {
      e.job = v->as_string();
    }
    if (const Json* v = j.find("phase"); v != nullptr && v->is_string()) {
      e.phase = v->as_string();
    }
    if (const Json* v = j.find("note"); v != nullptr && v->is_string()) {
      e.note = v->as_string();
    }
    if (const Json* v = j.find("seq")) e.seq = v->as_u64();
    if (const Json* v = j.find("t_us")) e.t_us = v->as_u64();
    if (const Json* v = j.find("faults")) e.faults = v->as_u64();
    if (const Json* v = j.find("value")) e.value = v->as_u64();
    return e;
  } catch (const JsonError&) {
    return std::nullopt;
  }
}

/// One {"event":{...}} stream frame.
std::string event_frame(const obs::Event& e) {
  Json j = Json::object();
  j.set("event", event_to_json(e));
  return j.dump();
}

/// One {"dropped":N} slow-consumer / overflow marker frame.
std::string dropped_frame(std::uint64_t n) {
  Json j = Json::object();
  j.set("dropped", Json::integer(n));
  return j.dump();
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), registry_(options_.registry) {}

Daemon::~Daemon() = default;

// ---------------------------------------------------------------------
// Request handling.

Json Daemon::job_status_json(const Job& job) const {
  Json j = Json::object();
  j.set("id", Json::string(job.spec.id));
  j.set("state", Json::string(to_string(job.state)));
  j.set("attempts", Json::integer(static_cast<std::uint64_t>(job.attempts)));
  j.set("priority",
        Json::integer(static_cast<std::uint64_t>(job.spec.priority)));
  if (!job.error.empty()) {
    j.set("error", Json::string(job.error));
    j.set("error_kind", Json::string(job.error_kind));
  }
  if (job.state == JobState::Done && !job.result_json.empty()) {
    j.set("result", Json::parse(job.result_json));
  }
  return j;
}

void Daemon::update_gauges() const {
  obs::set_gauge(obs::Gauge::SvcQueueDepth, queue_.size());
  obs::set_gauge(obs::Gauge::SvcJobsRunning, running_);
}

void Daemon::finish(Job& job, JobState state) {
  job.state = state;
  switch (state) {
    case JobState::Done: obs::add(obs::Counter::JobsDone); break;
    case JobState::Failed: obs::add(obs::Counter::JobsFailed); break;
    case JobState::Shed: obs::add(obs::Counter::JobsShed); break;
    case JobState::Quarantined:
      obs::add(obs::Counter::JobsQuarantined);
      break;
    default: break;
  }
  obs::record(obs::Histogram::JobLatencyNanos, now_ns() - job.submit_ns);
  obs::publish_job_event(job.spec.id, obs::EventKind::JobState, "svc", 0,
                         static_cast<std::uint64_t>(job.attempts),
                         to_string(state));
  update_gauges();
  done_cv_.notify_all();
}

Json Daemon::op_submit(const Json& request) {
  const Json* specv = request.find("spec");
  if (specv == nullptr) {
    throw JobError(JobErrorKind::BadRequest, "missing field \"spec\"");
  }
  const JobSpec spec = parse_job_spec(*specv);
  (void)job_entry(spec);  // unknown suite circuit -> BadRequest at admission
  obs::add(obs::Counter::JobsSubmitted);

  Json resp = ok_resp("submit");
  resp.set("id", Json::string(spec.id));

  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = jobs_.find(spec.id); it != jobs_.end()) {
    // Idempotent resubmission: same id -> the existing job, whatever
    // state it is in (the spec is not compared; the id is the contract).
    resp.set("accepted", Json::boolean(true));
    resp.set("existing", Json::boolean(true));
    resp.set("state", Json::string(to_string(it->second->state)));
    return resp;
  }
  if (draining_) {
    obs::add(obs::Counter::JobsRejected);
    resp.set("accepted", Json::boolean(false));
    resp.set("reason", Json::string("draining"));
    return resp;
  }
  if (queue_.size() >= options_.max_queue) {
    // Load shedding: displace the lowest-priority queued job, newest
    // first, but only for strictly higher-priority work — equal-priority
    // arrivals are rejected instead (no churn under uniform load).
    Job* victim = nullptr;
    for (Job* j : queue_) {
      if (j->spec.priority >= spec.priority) continue;
      if (victim == nullptr || j->spec.priority < victim->spec.priority ||
          (j->spec.priority == victim->spec.priority &&
           j->seq > victim->seq)) {
        victim = j;
      }
    }
    if (victim == nullptr) {
      obs::add(obs::Counter::JobsRejected);
      resp.set("accepted", Json::boolean(false));
      resp.set("reason", Json::string("queue_full"));
      return resp;
    }
    queue_.erase(std::find(queue_.begin(), queue_.end(), victim));
    victim->error = "displaced by higher-priority job " + spec.id;
    victim->error_kind = "shed";
    finish(*victim, JobState::Shed);
  }

  auto job = std::make_unique<Job>();
  job->spec = spec;
  job->seq = next_seq_++;
  job->submit_ns = now_ns();
  queue_.push_back(job.get());
  jobs_.emplace(spec.id, std::move(job));
  obs::add(obs::Counter::JobsAccepted);
  obs::publish_job_event(spec.id, obs::EventKind::JobState, "svc", 0, 0,
                         "queued");
  update_gauges();
  work_cv_.notify_one();

  resp.set("accepted", Json::boolean(true));
  resp.set("state", Json::string("queued"));
  return resp;
}

Json Daemon::op_status(const Json& request) {
  const std::string id = required_string(request, "id");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return fail_resp("not_found", "unknown job " + id);
  Json resp = ok_resp("status");
  resp.set("job", job_status_json(*it->second));
  return resp;
}

Json Daemon::op_wait(const Json& request) {
  const std::string id = required_string(request, "id");
  double timeout = 60.0;
  if (const Json* t = request.find("timeout_seconds")) {
    try {
      timeout = t->as_double();
    } catch (const JsonError&) {
      throw JobError(JobErrorKind::BadRequest,
                     "timeout_seconds must be a number");
    }
    if (!std::isfinite(timeout) || timeout < 0.0) timeout = 0.0;
    timeout = std::min(timeout, 600.0);
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout));
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return fail_resp("not_found", "unknown job " + id);
  Job* job = it->second.get();
  while (!is_terminal(job->state) && !draining_) {
    if (done_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      break;
    }
  }
  Json resp = ok_resp("wait");
  resp.set("job", job_status_json(*job));
  return resp;
}

Json Daemon::op_stats() {
  Json resp = ok_resp("stats");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    resp.set("queued", Json::integer(queue_.size()));
    resp.set("running", Json::integer(running_));
    resp.set("jobs", Json::integer(jobs_.size()));
    resp.set("draining", Json::boolean(draining_));
  }
  const SharedRegistry::Stats reg = registry_.stats();
  resp.set("registry_circuits", Json::integer(reg.circuits));
  resp.set("registry_idle_sims", Json::integer(reg.idle_sims));
  Json c = Json::object();
  static constexpr obs::Counter kExported[] = {
      obs::Counter::JobsSubmitted,    obs::Counter::JobsAccepted,
      obs::Counter::JobsRejected,     obs::Counter::JobsShed,
      obs::Counter::JobsStarted,      obs::Counter::JobsDone,
      obs::Counter::JobsFailed,       obs::Counter::JobsRetried,
      obs::Counter::JobsQuarantined,  obs::Counter::JobsDeadlineCut,
      obs::Counter::JobsResumed,      obs::Counter::SvcConnections,
      obs::Counter::SvcProtocolErrors, obs::Counter::RegistryCircuitHits,
      obs::Counter::RegistryCircuitMisses, obs::Counter::RegistrySimReuses,
  };
  for (const obs::Counter counter : kExported) {
    c.set(obs::counter_name(counter), Json::integer(obs::value(counter)));
  }
  resp.set("counters", std::move(c));
  return resp;
}

Json Daemon::op_events(const Json& request) {
  const std::string id = required_string(request, "id");
  bool known;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    known = jobs_.count(id) != 0;
  }
  const obs::EventHistory history = obs::event_history(id);
  // A job can be known only through its persisted ring (previous daemon
  // generation); unknown both ways is a typed miss.
  if (!known && history.events.empty() && history.dropped == 0) {
    return fail_resp("not_found", "unknown job " + id);
  }
  Json resp = ok_resp("events");
  resp.set("id", Json::string(id));
  resp.set("dropped", Json::integer(history.dropped));
  Json arr = Json::array();
  for (const obs::Event& e : history.events) {
    arr.push_back(event_to_json(e));
  }
  resp.set("events", std::move(arr));
  return resp;
}

bool Daemon::serve_watch(int fd, const Json& request) {
  std::string id;
  try {
    id = required_string(request, "id");
  } catch (const JobError& e) {
    try {
      write_frame(fd, fail_resp(to_string(e.kind()), e.what()).dump(),
                  util::Deadline::after(1.0));
      return true;
    } catch (const WireError&) {
      return false;
    }
  }

  const bool all_jobs = id == "*";
  bool terminal_at_start = false;
  std::string end_state;
  if (!all_jobs) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      // Unknown live, but a previous generation's ring may replay.
      const obs::EventHistory h = obs::event_history(id);
      if (h.events.empty() && h.dropped == 0) {
        try {
          write_frame(fd, fail_resp("not_found", "unknown job " + id).dump(),
                      util::Deadline::after(1.0));
          return true;
        } catch (const WireError&) {
          return false;
        }
      }
      terminal_at_start = true;
    } else {
      terminal_at_start = is_terminal(it->second->state);
      if (terminal_at_start) end_state = to_string(it->second->state);
    }
  }

  // Subscribe before reading the replay ring so no event can fall in the
  // gap; live events also present in the replay are deduplicated below
  // via their per-job sequence numbers.
  const auto sub =
      obs::subscribe(all_jobs ? "" : id, options_.watch_queue_capacity);
  obs::EventHistory replay;
  if (!all_jobs) replay = obs::event_history(id);

  const auto write_deadline = [] { return util::Deadline::after(5.0); };
  std::uint64_t last_seq = 0;
  try {
    Json ack = ok_resp("watch");
    ack.set("id", Json::string(id));
    ack.set("live", Json::boolean(!terminal_at_start));
    ack.set("replay", Json::integer(replay.events.size()));
    write_frame(fd, ack.dump(), write_deadline());
    if (replay.dropped != 0) {
      write_frame(fd, dropped_frame(replay.dropped), write_deadline());
    }
    for (const obs::Event& e : replay.events) {
      write_frame(fd, event_frame(e), write_deadline());
      last_seq = e.seq;
    }

    // A finished (or resumed-terminal) job has no live tail: replay is
    // the whole stream.
    bool end_after_flush = terminal_at_start;
    std::vector<obs::Event> batch;
    while (true) {
      std::uint64_t dropped = 0;
      batch.clear();
      sub->poll(batch, end_after_flush ? 0.0 : 0.25, &dropped);
      if (dropped != 0) {
        // Slow consumer: the subscription shed events; the marker keeps
        // the stream honest about the gap.
        write_frame(fd, dropped_frame(dropped), write_deadline());
      }
      for (const obs::Event& e : batch) {
        if (!all_jobs && e.seq <= last_seq) continue;  // replay overlap
        write_frame(fd, event_frame(e), write_deadline());
        last_seq = e.seq;
      }
      if (end_after_flush) break;

      std::string reason;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_) {
          reason = "draining";
        } else if (!all_jobs) {
          const auto it = jobs_.find(id);
          if (it != jobs_.end() && is_terminal(it->second->state)) {
            end_state = to_string(it->second->state);
          }
        }
      }
      if (!reason.empty()) {
        Json end = Json::object();
        end.set("end", Json::boolean(true));
        end.set("reason", Json::string(reason));
        write_frame(fd, end.dump(), write_deadline());
        return true;
      }
      // Terminal: one more zero-timeout flush drains events published
      // before the state flipped, then the end frame closes the stream.
      if (!end_state.empty()) end_after_flush = true;
    }
    Json end = Json::object();
    end.set("end", Json::boolean(true));
    if (!end_state.empty()) end.set("state", Json::string(end_state));
    write_frame(fd, end.dump(), write_deadline());
    return true;
  } catch (const WireError&) {
    // Subscriber vanished mid-stream (or stalled past the write
    // deadline): drop the stream; the job runs on regardless.
    return false;
  }
}

Json Daemon::handle_request(const Json& request) {
  try {
    if (!request.is_object()) {
      return fail_resp("protocol", "request must be an object");
    }
    const std::string op = required_string(request, "op");
    if (op == "ping") return ok_resp("ping");
    if (op == "submit") return op_submit(request);
    if (op == "status") return op_status(request);
    if (op == "wait") return op_wait(request);
    if (op == "stats") return op_stats();
    if (op == "events") return op_events(request);
    if (op == "shutdown") {
      shutdown_.request_stop();
      return ok_resp("shutdown");
    }
    return fail_resp("protocol", "unknown op \"" + op + '"');
  } catch (const JobError& e) {
    return fail_resp(to_string(e.kind()), e.what());
  } catch (const JsonError& e) {
    return fail_resp("protocol", e.what());
  }
}

void Daemon::serve_connection(int fd) {
  std::string payload;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (draining_) break;
    }
    // Cheap idle poll so draining is noticed promptly; once a frame
    // starts, the whole frame must arrive within the per-frame deadline
    // (slow-loris protection).
    if (!poll_readable(fd, 0.25)) continue;
    bool got = false;
    try {
      got = read_frame(fd, payload, util::Deadline::after(10.0));
    } catch (const WireError& e) {
      obs::add(obs::Counter::SvcProtocolErrors);
      try {
        write_frame(fd, fail_resp("protocol", e.what()).dump(),
                    util::Deadline::after(1.0));
      } catch (...) {
        // Peer already gone; nothing to report to.
      }
      break;
    }
    if (!got) break;  // clean end of session

    Json response;
    try {
      const Json request = Json::parse(payload, 32, kMaxFrameBytes);
      // `watch` is a stream, not a request/response: it owns the
      // connection until its end frame, then the request loop resumes
      // (a client can watch, then submit, on one connection).
      const Json* op = request.is_object() ? request.find("op") : nullptr;
      if (op != nullptr && op->is_string() && op->as_string() == "watch") {
        if (!serve_watch(fd, request)) break;
        continue;
      }
      response = handle_request(request);
    } catch (const JsonError& e) {
      obs::add(obs::Counter::SvcProtocolErrors);
      response = fail_resp("protocol", e.what());
    }
    try {
      write_frame(fd, response.dump(), util::Deadline::after(30.0));
    } catch (const WireError&) {
      break;  // mid-response disconnect: the job (if any) runs on
    }
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    --active_conns_;
  }
  conns_cv_.notify_all();
}

// ---------------------------------------------------------------------
// Execution.

void Daemon::executor_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (stop_executors_) return;
    Job* best = nullptr;
    double soonest = std::numeric_limits<double>::infinity();
    const double now = now_s();
    for (Job* j : queue_) {
      if (j->not_before > now) {
        soonest = std::min(soonest, j->not_before);
        continue;
      }
      if (best == nullptr || j->spec.priority > best->spec.priority ||
          (j->spec.priority == best->spec.priority && j->seq < best->seq)) {
        best = j;
      }
    }
    if (best == nullptr) {
      if (std::isfinite(soonest)) {
        work_cv_.wait_for(lock, std::chrono::duration_cast<
                                    std::chrono::steady_clock::duration>(
                                    std::chrono::duration<double>(
                                        std::max(0.001, soonest - now))));
      } else {
        work_cv_.wait(lock);
      }
      continue;
    }
    queue_.erase(std::find(queue_.begin(), queue_.end(), best));
    best->state = JobState::Running;
    best->attempts++;
    running_++;
    obs::add(obs::Counter::JobsStarted);
    obs::publish_job_event(best->spec.id, obs::EventKind::JobState, "svc", 0,
                           static_cast<std::uint64_t>(best->attempts),
                           "running");
    if (!best->started_once) {
      best->started_once = true;
      obs::record(obs::Histogram::JobQueueNanos,
                  now_ns() - best->submit_ns);
    }
    best->run_cancel = util::CancelToken::make(
        best->spec.deadline_seconds > 0.0
            ? util::Deadline::after(best->spec.deadline_seconds)
            : util::Deadline{});
    best->progress_ns = std::make_shared<std::atomic<std::uint64_t>>(now_ns());
    update_gauges();
    lock.unlock();
    execute_attempt(*best);
    lock.lock();
  }
}

void Daemon::execute_attempt(Job& job) {
  std::string result;
  std::optional<JobError> failure;
  // Pipeline events published from this thread (phase begin/end, round
  // deltas, executor snapshots) carry the owning job's id.
  const obs::EventJobScope event_scope(job.spec.id);
  // Exception barrier: nothing a job does — spec resolution, registry
  // build, simulation — escapes this attempt as anything but a JobError.
  try {
    const gen::SuiteEntry entry = job_entry(job.spec);
    const std::string key = circuit_key(job.spec);
    SharedRegistry::SimLease lease =
        registry_.lease_simulator(key, entry, job.spec.fault_model);

    ExecHooks hooks;
    hooks.cancel = job.run_cancel;
    if (!options_.state_dir.empty()) {
      hooks.cache_path = options_.state_dir + "/job." + job.spec.id;
    }
    hooks.shared_inputs = [this, key](const gen::SuiteEntry& e,
                                      fault::FaultModelKind m) {
      return registry_.inputs(key, e, m);
    };
    hooks.simulator = lease.get();
    const std::shared_ptr<std::atomic<std::uint64_t>> stamp = job.progress_ns;
    hooks.progress = [stamp](const char*) noexcept {
      stamp->store(now_ns(), std::memory_order_relaxed);
    };

    const obs::ScopedTimer timer(obs::Counter::kCount,
                                 obs::Histogram::JobRunNanos);
    result = run_json(execute_job(job.spec, hooks)).dump();
  } catch (const JobError& e) {
    failure = e;
  } catch (const std::exception& e) {
    failure = JobError(JobErrorKind::Internal, e.what());
  } catch (...) {
    failure = JobError(JobErrorKind::Internal, "unknown exception");
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const bool deadline_expired =
      job.run_cancel.valid() && job.run_cancel.deadline().expired();
  job.run_cancel = util::CancelToken();
  job.progress_ns.reset();
  running_--;

  if (!failure) {
    job.result_json = std::move(result);
    job.error.clear();
    job.error_kind.clear();
    finish(job, JobState::Done);
  } else if (failure->kind() == JobErrorKind::DeadlineExceeded && draining_ &&
             !deadline_expired) {
    // Drain interrupted the attempt, not the job's own budget: back to
    // the queue so the resume snapshot carries it to the next daemon
    // generation, where the checkpoint journal finishes it.
    job.state = JobState::Queued;
    job.not_before = 0.0;
    queue_.push_back(&job);
    obs::publish_job_event(job.spec.id, obs::EventKind::JobState, "svc", 0,
                           static_cast<std::uint64_t>(job.attempts),
                           "requeued_for_drain");
    update_gauges();
  } else if (failure->kind() == JobErrorKind::DeadlineExceeded) {
    obs::add(obs::Counter::JobsDeadlineCut);
    job.error = failure->what();
    job.error_kind = to_string(failure->kind());
    finish(job, JobState::Failed);
  } else if (!failure->transient()) {
    job.error = failure->what();
    job.error_kind = to_string(failure->kind());
    finish(job, JobState::Failed);
  } else if (job.attempts > options_.max_retries) {
    job.error = failure->what();
    job.error_kind = to_string(failure->kind());
    finish(job, JobState::Quarantined);
  } else {
    // Transient failure: exponential backoff, drain-interruptible (the
    // gate is a timestamp, not a sleep — a drain snapshots the job
    // immediately).
    obs::add(obs::Counter::JobsRetried);
    const double backoff =
        std::min(options_.backoff_max_seconds,
                 options_.backoff_initial_seconds *
                     std::ldexp(1.0, job.attempts - 1));
    job.state = JobState::Queued;
    job.not_before = now_s() + backoff;
    job.error = failure->what();
    job.error_kind = to_string(failure->kind());
    queue_.push_back(&job);
    obs::publish_job_event(job.spec.id, obs::EventKind::JobState, "svc", 0,
                           static_cast<std::uint64_t>(job.attempts),
                           "retry_backoff");
    update_gauges();
  }
}

void Daemon::watchdog_loop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      std::max(0.005, options_.watchdog_interval_seconds)));
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(interval);
    const std::uint64_t now = now_ns();
    const std::uint64_t stall_ns =
        static_cast<std::uint64_t>(options_.stall_seconds * 1e9);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, job] : jobs_) {
      if (job->state != JobState::Running || !job->run_cancel.valid()) {
        continue;
      }
      if (job->run_cancel.deadline().expired()) {
        // The token's own deadline latches on the next poll; raising it
        // here just shortens the window for jobs between poll points.
        job->run_cancel.request_stop();
        continue;
      }
      if (job->progress_ns != nullptr &&
          now - job->progress_ns->load(std::memory_order_relaxed) >
              stall_ns) {
        job->run_cancel.request_stop();  // wedged: no phase progress
      }
    }
  }
}

// ---------------------------------------------------------------------
// Drain snapshot.

namespace {
const char* kSnapshotFile = "/resume.jobs";
}

void Daemon::write_snapshot() {
  if (options_.state_dir.empty()) return;
  Json root = Json::object();
  root.set("v", Json::integer(1));
  Json arr = Json::array();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Stable order (by admission seq) so equal daemon states produce
    // byte-identical snapshots.
    std::vector<const Job*> ordered;
    ordered.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) ordered.push_back(job.get());
    std::sort(ordered.begin(), ordered.end(),
              [](const Job* a, const Job* b) { return a->seq < b->seq; });
    for (const Job* job : ordered) {
      Json j = Json::object();
      j.set("spec", job_spec_json(job->spec));
      j.set("state", Json::string(to_string(job->state)));
      j.set("attempts",
            Json::integer(static_cast<std::uint64_t>(job->attempts)));
      if (!job->error.empty()) {
        j.set("error", Json::string(job->error));
        j.set("error_kind", Json::string(job->error_kind));
      }
      if (job->state == JobState::Done && !job->result_json.empty()) {
        j.set("result", Json::parse(job->result_json));
      }
      // The job's retained event ring rides along so a restarted daemon
      // can answer `events`/`watch` replay for pre-drain work (the
      // loader ignores unknown keys, so v stays 1).
      const obs::EventHistory history = obs::event_history(job->spec.id);
      if (!history.events.empty() || history.dropped != 0) {
        Json ev = Json::array();
        for (const obs::Event& e : history.events) {
          ev.push_back(event_to_json(e));
        }
        j.set("events", std::move(ev));
        j.set("events_dropped", Json::integer(history.dropped));
      }
      arr.push_back(std::move(j));
    }
  }
  root.set("jobs", std::move(arr));
  util::store_write(options_.state_dir + kSnapshotFile, root.dump());
}

std::size_t Daemon::load_snapshot() {
  if (options_.state_dir.empty()) return 0;
  const std::optional<std::string> payload =
      util::store_read(options_.state_dir + kSnapshotFile);
  if (!payload) return 0;
  std::size_t resumed = 0;
  try {
    const Json root = Json::parse(*payload, 32, 64u << 20);
    const Json* version = root.find("v");
    if (version == nullptr || version->as_u64() != 1) return 0;
    const Json* jobs = root.find("jobs");
    if (jobs == nullptr) return 0;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Json& item : jobs->items()) {
      const Json* specv = item.find("spec");
      if (specv == nullptr) continue;
      JobSpec spec;
      try {
        spec = parse_job_spec(*specv);
      } catch (const JobError&) {
        continue;  // a corrupt entry loses that job, not the snapshot
      }
      if (jobs_.count(spec.id) != 0) continue;
      if (const Json* ev = item.find("events")) {
        std::vector<obs::Event> events;
        for (const Json& e : ev->items()) {
          if (auto parsed = event_from_json(e)) {
            events.push_back(std::move(*parsed));
          }
        }
        std::uint64_t dropped = 0;
        if (const Json* d = item.find("events_dropped")) {
          try {
            dropped = d->as_u64();
          } catch (const JsonError&) {
          }
        }
        obs::seed_event_history(spec.id, std::move(events), dropped);
      }
      auto job = std::make_unique<Job>();
      job->spec = spec;
      job->seq = next_seq_++;
      job->submit_ns = now_ns();
      if (const Json* a = item.find("attempts")) {
        try {
          job->attempts = static_cast<int>(a->as_u64());
        } catch (const JsonError&) {
        }
      }
      const Json* statev = item.find("state");
      const std::string state =
          (statev != nullptr && statev->is_string()) ? statev->as_string()
                                                     : "queued";
      if (state == "done") {
        job->state = JobState::Done;
        if (const Json* r = item.find("result")) {
          job->result_json = r->dump();
        }
      } else if (state == "failed" || state == "shed" ||
                 state == "quarantined") {
        job->state = state == "failed"     ? JobState::Failed
                     : state == "shed"     ? JobState::Shed
                                           : JobState::Quarantined;
        if (const Json* e = item.find("error")) {
          if (e->is_string()) job->error = e->as_string();
        }
        if (const Json* k = item.find("error_kind")) {
          if (k->is_string()) job->error_kind = k->as_string();
        }
      } else {
        // queued or running at drain: re-enqueue; the per-job journal
        // resumes completed phases bit-identically.
        job->state = JobState::Queued;
        queue_.push_back(job.get());
        obs::add(obs::Counter::JobsResumed);
        obs::publish_job_event(spec.id, obs::EventKind::JobState, "svc", 0,
                               static_cast<std::uint64_t>(job->attempts),
                               "resumed");
        ++resumed;
      }
      jobs_.emplace(spec.id, std::move(job));
    }
    update_gauges();
  } catch (const JsonError&) {
    return resumed;  // corrupt snapshot degrades to a cold start
  }
  return resumed;
}

// ---------------------------------------------------------------------
// Main loop.

std::size_t Daemon::run(const util::CancelToken& shutdown) {
  shutdown_ = shutdown;
  // Event retention must be on before the snapshot loads so persisted
  // rings can be re-seeded (seed_event_history is a no-op otherwise).
  obs::set_event_history(options_.event_history);
  load_snapshot();

  const int listen_fd = listen_unix(options_.socket_path);
  pool_ = std::make_unique<util::ThreadPool>(
      std::max<std::size_t>(1, options_.executors));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_executors_ = false;
  }
  for (std::size_t i = 0; i < std::max<std::size_t>(1, options_.executors);
       ++i) {
    pool_->submit([this] { executor_loop(); });
  }
  watchdog_stop_.store(false);
  std::thread watchdog([this] { watchdog_loop(); });

  while (!shutdown_.stop_requested()) {
    int fd = -1;
    try {
      fd = accept_unix(listen_fd, util::Deadline::after(0.2));
    } catch (const WireError&) {
      break;  // listener broken: drain what we have
    }
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      ++active_conns_;
    }
    std::thread(&Daemon::serve_connection, this, fd).detach();
  }

  // Drain: stop accepting, cancel running attempts at their next
  // cancellation point, let connections notice and finish.
  ::close(listen_fd);
  ::unlink(options_.socket_path.c_str());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    for (const auto& [id, job] : jobs_) {
      if (job->state == JobState::Running && job->run_cancel.valid()) {
        job->run_cancel.request_stop();
      }
    }
  }
  done_cv_.notify_all();
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(conns_mutex_);
    conns_cv_.wait(lock, [this] { return active_conns_.load() == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_executors_ = true;
  }
  work_cv_.notify_all();
  pool_.reset();  // joins the executor loops
  watchdog_stop_.store(true);
  watchdog.join();

  write_snapshot();
  std::size_t open = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, job] : jobs_) {
      if (!is_terminal(job->state)) ++open;
    }
  }
  return open;
}

}  // namespace scanc::svc
