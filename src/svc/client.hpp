// Synchronous client for the compaction service (docs/service.md).
//
// One connection, one outstanding request at a time — the shape the
// load generator, the tests, and the CLI need.  Errors surface as
// WireError (transport) or JsonError (malformed server reply); both
// close the connection, after which connect() may be called again.
#pragma once

#include <optional>
#include <string>

#include "svc/job.hpp"
#include "svc/json.hpp"

namespace scanc::svc {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects, retrying while the daemon socket is not up yet (startup
  /// races) until `timeout_seconds` elapses.  Throws WireError.
  void connect(const std::string& socket_path, double timeout_seconds = 5.0);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  /// The raw file descriptor (hostile-client tests write garbage here).
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Sends one request frame and reads one response frame.
  Json request(const Json& req, double timeout_seconds = 30.0);

  /// op:"submit" with a validated spec.
  Json submit(const JobSpec& spec, double timeout_seconds = 30.0);
  /// op:"submit" with an arbitrary spec value (malformed-spec tests).
  Json submit_raw(Json spec, double timeout_seconds = 30.0);
  Json status(const std::string& id, double timeout_seconds = 30.0);
  /// Blocks server-side until the job is terminal (or `wait_seconds`).
  Json wait(const std::string& id, double wait_seconds = 60.0);
  Json stats(double timeout_seconds = 30.0);
  /// Bounded replay of a job's retained event ring (op:"events").
  Json events(const std::string& id, double timeout_seconds = 30.0);
  [[nodiscard]] bool ping();
  void shutdown_server();

  /// Starts an op:"watch" stream for `id` ("*" = all jobs) and returns
  /// the ack frame.  After this the connection carries stream frames —
  /// read them with next_frame() until one has "end" (or an error frame
  /// arrives); ordinary requests work again after the end frame.
  Json watch_start(const std::string& id, double timeout_seconds = 5.0);

  /// Reads one stream frame, waiting up to `timeout_seconds` for it to
  /// begin (then a generous transport deadline for the bytes, so a poll
  /// timeout never desyncs the frame boundary).  Returns nullopt when no
  /// frame arrived within the timeout; throws WireError when the server
  /// closed or the transport failed.
  std::optional<Json> next_frame(double timeout_seconds = 1.0);

 private:
  int fd_ = -1;
};

}  // namespace scanc::svc
