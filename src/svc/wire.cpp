#include "svc/wire.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/telemetry.hpp"

namespace scanc::svc {

namespace {

[[noreturn]] void throw_errno(WireError::Kind kind, const std::string& what) {
  throw WireError(kind, what + ": " + std::strerror(errno));
}

/// Polls `fd` for `events` until ready or the deadline expires.
/// Returns true when ready, false on expiry.
bool wait_ready(int fd, short events, const util::Deadline& deadline) {
  while (true) {
    int timeout_ms = -1;
    if (!deadline.never()) {
      const double rem = deadline.remaining_seconds();
      if (rem <= 0.0) return false;
      // Round up so a 0.4ms remainder still waits rather than spins.
      timeout_ms = static_cast<int>(rem * 1000.0) + 1;
    }
    struct pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw_errno(WireError::Kind::Io, "poll");
  }
}

/// Reads exactly `len` bytes.  Returns the byte count read before a
/// clean EOF (so 0 = EOF at the boundary, < len = truncated frame).
std::size_t read_exact(int fd, char* buf, std::size_t len,
                       const util::Deadline& deadline) {
  std::size_t got = 0;
  while (got < len) {
    if (!wait_ready(fd, POLLIN, deadline)) {
      throw WireError(WireError::Kind::Timeout, "read timed out");
    }
    const ssize_t n = ::read(fd, buf + got, len - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return got;  // peer closed
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw_errno(WireError::Kind::Io, "read");
  }
  return got;
}

void write_exact(int fd, const char* buf, std::size_t len,
                 const util::Deadline& deadline) {
  std::size_t sent = 0;
  while (sent < len) {
    if (!wait_ready(fd, POLLOUT, deadline)) {
      throw WireError(WireError::Kind::Timeout, "write timed out");
    }
    const ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw_errno(WireError::Kind::Io, "write");
  }
}

}  // namespace

bool poll_readable(int fd, double seconds) {
  return wait_ready(fd, POLLIN, util::Deadline::after(seconds));
}

bool read_frame(int fd, std::string& payload, const util::Deadline& deadline) {
  unsigned char hdr[4];
  const std::size_t got =
      read_exact(fd, reinterpret_cast<char*>(hdr), sizeof(hdr), deadline);
  if (got == 0) return false;  // clean EOF between frames
  if (got < sizeof(hdr)) {
    throw WireError(WireError::Kind::Eof, "truncated length prefix");
  }
  const std::uint32_t len = (static_cast<std::uint32_t>(hdr[0]) << 24) |
                            (static_cast<std::uint32_t>(hdr[1]) << 16) |
                            (static_cast<std::uint32_t>(hdr[2]) << 8) |
                            static_cast<std::uint32_t>(hdr[3]);
  if (len > kMaxFrameBytes) {
    throw WireError(WireError::Kind::TooLarge,
                    "frame length " + std::to_string(len) + " exceeds cap " +
                        std::to_string(kMaxFrameBytes));
  }
  payload.resize(len);
  if (len != 0 && read_exact(fd, payload.data(), len, deadline) < len) {
    throw WireError(WireError::Kind::Eof, "truncated frame payload");
  }
  obs::add(obs::Counter::SvcFramesRead);
  obs::add(obs::Counter::SvcBytesRead, len);
  return true;
}

void write_frame(int fd, std::string_view payload,
                 const util::Deadline& deadline) {
  if (payload.size() > kMaxFrameBytes) {
    throw WireError(WireError::Kind::TooLarge, "outgoing frame too large");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string buf;
  buf.reserve(4 + payload.size());
  buf.push_back(static_cast<char>((len >> 24) & 0xFF));
  buf.push_back(static_cast<char>((len >> 16) & 0xFF));
  buf.push_back(static_cast<char>((len >> 8) & 0xFF));
  buf.push_back(static_cast<char>(len & 0xFF));
  buf.append(payload);
  write_exact(fd, buf.data(), buf.size(), deadline);
  obs::add(obs::Counter::SvcFramesWritten);
  obs::add(obs::Counter::SvcBytesWritten, payload.size());
}

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw WireError(WireError::Kind::Io, "socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

int listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno(WireError::Kind::Io, "socket");
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno(WireError::Kind::Io, "bind");
  }
  if (::listen(fd, backlog) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno(WireError::Kind::Io, "listen");
  }
  return fd;
}

int accept_unix(int listen_fd, const util::Deadline& deadline) {
  if (!wait_ready(listen_fd, POLLIN, deadline)) return -1;
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      return -1;
    }
    throw_errno(WireError::Kind::Io, "accept");
  }
  obs::add(obs::Counter::SvcConnections);
  return fd;
}

int connect_unix(const std::string& path, const util::Deadline& deadline) {
  const sockaddr_un addr = make_addr(path);
  while (true) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno(WireError::Kind::Io, "socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    const int saved = errno;
    ::close(fd);
    if (saved == EINTR) continue;
    if ((saved == ECONNREFUSED || saved == ENOENT) && !deadline.never() &&
        !deadline.expired()) {
      // Daemon not up yet: the client-side retry loop for test/CI
      // startup races.  Cheap linear backoff within the deadline.
      struct timespec ts{0, 20'000'000};  // 20ms
      ::nanosleep(&ts, nullptr);
      continue;
    }
    errno = saved;
    throw_errno(WireError::Kind::Io, "connect " + path);
  }
}

}  // namespace scanc::svc
