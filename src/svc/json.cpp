#include "svc/json.hpp"

#include <array>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace scanc::svc {

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::Bool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::Number;
  j.num_ = v;
  if (v >= 0.0 && v <= 9.007199254740992e15 && std::floor(v) == v) {
    j.num_exact_ = true;
    j.uint_ = static_cast<std::uint64_t>(v);
  }
  return j;
}

Json Json::integer(std::uint64_t v) {
  Json j;
  j.type_ = Type::Number;
  j.num_ = static_cast<double>(v);
  j.num_exact_ = true;
  j.uint_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::String;
  j.str_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::Object;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::Bool) throw JsonError("expected a boolean");
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::Number) throw JsonError("expected a number");
  return num_;
}

std::uint64_t Json::as_u64() const {
  if (type_ != Type::Number) throw JsonError("expected a number");
  if (num_exact_) return uint_;
  if (num_ < 0.0 || std::floor(num_) != num_ || num_ > 1.8446744073709552e19) {
    throw JsonError("expected a non-negative integer");
  }
  return static_cast<std::uint64_t>(num_);
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) throw JsonError("expected a string");
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::Array) throw JsonError("expected an array");
  return arr_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::Object) throw JsonError("expected an object");
  return obj_;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::set(std::string key, Json value) {
  if (type_ != Type::Object) throw JsonError("set() on a non-object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  if (type_ != Type::Array) throw JsonError("push_back() on a non-array");
  arr_.push_back(std::move(value));
  return *this;
}

// ---------------------------------------------------------------------
// Serialization.

namespace {

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::Null:
      out = "null";
      break;
    case Type::Bool:
      out = bool_ ? "true" : "false";
      break;
    case Type::Number:
      if (num_exact_) {
        out = std::to_string(uint_);
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
        out = buf;
      }
      break;
    case Type::String:
      dump_string(out, str_);
      break;
    case Type::Array: {
      out.push_back('[');
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out.push_back(',');
        first = false;
        out += v.dump();
      }
      out.push_back(']');
      break;
    }
    case Type::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(out, k);
        out.push_back(':');
        out += v.dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Parsing.

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Json run() {
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw JsonError(std::string(what) + " at offset " +
                    std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(std::size_t depth) {
    if (depth > max_depth_) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Json::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Json::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object(std::size_t depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Json parse_array(std::size_t depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: require the low half.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const unsigned lo = parse_hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid surrogate pair");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              fail("lone high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    if (integral && token[0] != '-') {
      std::uint64_t u = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), u);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return Json::integer(u);
      }
      // Falls through for out-of-range integers (parsed as double).
    }
    errno = 0;
    char* end = nullptr;
    const std::string copy(token);  // strtod needs a terminator
    const double v = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size() || !std::isfinite(v)) {
      fail("invalid number");
    }
    return Json::number(v);
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text, std::size_t max_depth,
                 std::size_t max_bytes) {
  if (text.size() > max_bytes) throw JsonError("document too large");
  return Parser(text, max_depth).run();
}

}  // namespace scanc::svc
