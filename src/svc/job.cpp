#include "svc/job.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <span>

#include "fault/fault_sim.hpp"

namespace scanc::svc {

const char* to_string(JobState s) noexcept {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Shed: return "shed";
    case JobState::Quarantined: return "quarantined";
  }
  return "?";
}

const char* to_string(JobErrorKind k) noexcept {
  switch (k) {
    case JobErrorKind::BadRequest: return "bad_request";
    case JobErrorKind::DeadlineExceeded: return "deadline_exceeded";
    case JobErrorKind::Internal: return "internal";
  }
  return "?";
}

// ---------------------------------------------------------------------
// Spec parsing.

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw JobError(JobErrorKind::BadRequest, what);
}

const Json& require(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  if (v == nullptr) bad(std::string("missing field \"") + key + '"');
  return *v;
}

std::uint64_t u64_field(const Json& obj, const char* key, std::uint64_t def,
                        std::uint64_t lo, std::uint64_t hi) {
  const Json* v = obj.find(key);
  if (v == nullptr) return def;
  std::uint64_t u = 0;
  try {
    u = v->as_u64();
  } catch (const JsonError&) {
    bad(std::string("field \"") + key + "\" must be an unsigned integer");
  }
  if (u < lo || u > hi) {
    bad(std::string("field \"") + key + "\" out of range [" +
        std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return u;
}

double double_field(const Json& obj, const char* key, double def, double lo,
                    double hi) {
  const Json* v = obj.find(key);
  if (v == nullptr) return def;
  double d = 0.0;
  try {
    d = v->as_double();
  } catch (const JsonError&) {
    bad(std::string("field \"") + key + "\" must be a number");
  }
  if (!std::isfinite(d) || d < lo || d > hi) {
    bad(std::string("field \"") + key + "\" out of range");
  }
  return d;
}

bool bool_field(const Json& obj, const char* key, bool def) {
  const Json* v = obj.find(key);
  if (v == nullptr) return def;
  try {
    return v->as_bool();
  } catch (const JsonError&) {
    bad(std::string("field \"") + key + "\" must be a boolean");
  }
}

std::string string_field(const Json& obj, const char* key) {
  try {
    return require(obj, key).as_string();
  } catch (const JsonError&) {
    bad(std::string("field \"") + key + "\" must be a string");
  }
}

/// The job id doubles as an on-disk journal file name component, so the
/// accepted alphabet is airtight: no separators, no leading dot.
bool valid_id(const std::string& id) {
  if (id.empty() || id.size() > 64 || id.front() == '.') return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void check_known_keys(const Json& obj, std::span<const char* const> allowed,
                      const char* where) {
  for (const auto& [key, value] : obj.members()) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) bad(std::string("unknown ") + where + " field \"" + key + '"');
  }
}

gen::GenParams parse_gen(const Json& g) {
  if (!g.is_object()) bad("field \"gen\" must be an object");
  static constexpr const char* kKeys[] = {
      "name",  "inputs", "outputs", "flip_flops",
      "gates", "seed",   "pi_mux_fraction"};
  check_known_keys(g, kKeys, "gen");
  gen::GenParams p;
  p.name = string_field(g, "name");
  if (!valid_id(p.name)) bad("gen.name must match [A-Za-z0-9._-]{1,64}");
  p.num_inputs = u64_field(g, "inputs", 0, 1, 256);
  p.num_outputs = u64_field(g, "outputs", 0, 1, 256);
  p.num_flip_flops = u64_field(g, "flip_flops", 8, 0, 4096);
  p.num_gates = u64_field(g, "gates", 100, 1, 50000);
  p.seed = u64_field(g, "seed", 1, 0, UINT64_MAX);
  p.pi_mux_fraction = double_field(g, "pi_mux_fraction", 0.7, 0.0, 1.0);
  return p;
}

}  // namespace

JobSpec parse_job_spec(const Json& spec) {
  if (!spec.is_object()) bad("spec must be an object");
  static constexpr const char* kKeys[] = {
      "id",          "kind",       "circuit",          "gen",
      "seed",        "t0_length",  "fault_model",      "chains",
      "threads",     "priority",   "deadline_seconds", "dynamic_baseline"};
  check_known_keys(spec, kKeys, "spec");

  JobSpec out;
  out.id = string_field(spec, "id");
  if (!valid_id(out.id)) bad("spec.id must match [A-Za-z0-9._-]{1,64}");

  const std::string kind = string_field(spec, "kind");
  if (kind == "suite") {
    out.kind = JobSpec::Kind::Suite;
    out.circuit = string_field(spec, "circuit");
    if (spec.find("gen") != nullptr) bad("\"gen\" invalid for kind \"suite\"");
  } else if (kind == "gen") {
    out.kind = JobSpec::Kind::Gen;
    out.gen = parse_gen(require(spec, "gen"));
    if (spec.find("circuit") != nullptr) {
      bad("\"circuit\" invalid for kind \"gen\"");
    }
  } else {
    bad("spec.kind must be \"suite\" or \"gen\"");
  }

  out.seed = u64_field(spec, "seed", 1, 0, UINT64_MAX);
  out.random_t0_length = u64_field(spec, "t0_length", 1000, 1, 100000);

  if (const Json* fm = spec.find("fault_model")) {
    std::string name;
    try {
      name = fm->as_string();
    } catch (const JsonError&) {
      bad("spec.fault_model must be a string");
    }
    if (name == "stuck") {
      out.fault_model = fault::FaultModelKind::StuckAt;
    } else if (name == "transition") {
      out.fault_model = fault::FaultModelKind::Transition;
    } else {
      bad("spec.fault_model must be \"stuck\" or \"transition\"");
    }
  }

  out.num_chains = u64_field(spec, "chains", 1, 1, 1024);
  out.num_threads = u64_field(spec, "threads", 1, 0, 32);
  out.priority = static_cast<int>(u64_field(spec, "priority", 1, 0, 9));
  out.deadline_seconds =
      double_field(spec, "deadline_seconds", 0.0, 0.0, 86400.0);
  out.run_dynamic_baseline = bool_field(spec, "dynamic_baseline", false);
  return out;
}

Json job_spec_json(const JobSpec& spec) {
  Json j = Json::object();
  j.set("id", Json::string(spec.id));
  if (spec.kind == JobSpec::Kind::Suite) {
    j.set("kind", Json::string("suite"));
    j.set("circuit", Json::string(spec.circuit));
  } else {
    j.set("kind", Json::string("gen"));
    Json g = Json::object();
    g.set("name", Json::string(spec.gen.name));
    g.set("inputs", Json::integer(spec.gen.num_inputs));
    g.set("outputs", Json::integer(spec.gen.num_outputs));
    g.set("flip_flops", Json::integer(spec.gen.num_flip_flops));
    g.set("gates", Json::integer(spec.gen.num_gates));
    g.set("seed", Json::integer(spec.gen.seed));
    g.set("pi_mux_fraction", Json::number(spec.gen.pi_mux_fraction));
    j.set("gen", std::move(g));
  }
  j.set("seed", Json::integer(spec.seed));
  j.set("t0_length", Json::integer(spec.random_t0_length));
  j.set("fault_model",
        Json::string(fault::FaultModel::get(spec.fault_model).name()));
  j.set("chains", Json::integer(spec.num_chains));
  j.set("threads", Json::integer(spec.num_threads));
  j.set("priority", Json::integer(static_cast<std::uint64_t>(spec.priority)));
  j.set("deadline_seconds", Json::number(spec.deadline_seconds));
  j.set("dynamic_baseline", Json::boolean(spec.run_dynamic_baseline));
  return j;
}

gen::SuiteEntry job_entry(const JobSpec& spec) {
  if (spec.kind == JobSpec::Kind::Suite) {
    const std::optional<gen::SuiteEntry> entry =
        gen::find_suite_entry(spec.circuit);
    if (!entry) bad("unknown suite circuit \"" + spec.circuit + '"');
    return *entry;
  }
  gen::SuiteEntry entry;
  entry.params = spec.gen;
  return entry;
}

std::string circuit_key(const JobSpec& spec) {
  if (spec.kind == JobSpec::Kind::Suite) return "suite:" + spec.circuit;
  const gen::GenParams& g = spec.gen;
  char frac[32];
  std::snprintf(frac, sizeof(frac), "%.6g", g.pi_mux_fraction);
  return "gen:" + g.name + ':' + std::to_string(g.num_inputs) + ':' +
         std::to_string(g.num_outputs) + ':' +
         std::to_string(g.num_flip_flops) + ':' +
         std::to_string(g.num_gates) + ':' + std::to_string(g.seed) + ':' +
         frac;
}

// ---------------------------------------------------------------------
// Result serialization.

namespace {

Json variant_json(const expt::VariantResult& v) {
  Json j = Json::object();
  j.set("det_t0", Json::integer(v.det_t0));
  j.set("det_scan", Json::integer(v.det_scan));
  j.set("det_final", Json::integer(v.det_final));
  j.set("len_t0", Json::integer(v.len_t0));
  j.set("len_scan", Json::integer(v.len_scan));
  j.set("added", Json::integer(v.added));
  j.set("cyc_init", Json::integer(v.cyc_init));
  j.set("cyc_comp", Json::integer(v.cyc_comp));
  j.set("atspeed_ave", Json::number(v.atspeed_ave));
  j.set("atspeed_min", Json::integer(v.atspeed_min));
  j.set("atspeed_max", Json::integer(v.atspeed_max));
  j.set("tests_final", Json::integer(v.tests_final));
  j.set("vectors_final", Json::integer(v.vectors_final));
  return j;
}

}  // namespace

Json run_json(const expt::CircuitRun& run) {
  Json j = Json::object();
  j.set("name", Json::string(run.name));
  j.set("flip_flops", Json::integer(run.flip_flops));
  j.set("comb_tests", Json::integer(run.comb_tests));
  j.set("faults", Json::integer(run.faults));
  j.set("detectable", Json::integer(run.detectable));
  j.set("atpg", variant_json(run.atpg));
  j.set("random", variant_json(run.random));
  j.set("cyc_dyn", Json::integer(run.cyc_dyn));
  j.set("cyc_4_init", Json::integer(run.cyc_4_init));
  j.set("cyc_4_comp", Json::integer(run.cyc_4_comp));
  j.set("atspeed_ave_4", Json::number(run.atspeed_ave_4));
  j.set("atspeed_min_4", Json::integer(run.atspeed_min_4));
  j.set("atspeed_max_4", Json::integer(run.atspeed_max_4));
  // Wall-clock: the one nondeterministic field.  Clients comparing
  // results for bit-identity (the resume test) zero it first.
  j.set("seconds", Json::number(run.seconds));
  return j;
}

// ---------------------------------------------------------------------
// Execution.

expt::CircuitRun execute_job(const JobSpec& spec, const ExecHooks& hooks) {
  const gen::SuiteEntry entry = job_entry(spec);

  expt::RunnerOptions opt;
  opt.seed = spec.seed;
  opt.random_t0_length = spec.random_t0_length;
  opt.num_threads = spec.num_threads;
  opt.fault_model = spec.fault_model;
  opt.num_chains = spec.num_chains;
  opt.run_dynamic_baseline = spec.run_dynamic_baseline;
  opt.cache_path = hooks.cache_path;
  opt.shared_inputs = hooks.shared_inputs;
  opt.simulator = hooks.simulator;
  opt.progress = hooks.progress;
  opt.cancel = hooks.cancel;

  expt::CircuitRun run;
  try {
    run = expt::run_circuit(entry, opt);
  } catch (const JobError&) {
    throw;
  } catch (const std::exception& e) {
    throw JobError(JobErrorKind::Internal, e.what());
  } catch (...) {
    throw JobError(JobErrorKind::Internal, "unknown exception");
  }
  if (!run.completed) {
    // The attempt's finished phases are journaled under hooks.cache_path;
    // a retried or resumed attempt picks them up.
    throw JobError(JobErrorKind::DeadlineExceeded,
                   "cancelled during " + run.stopped_at);
  }
  return run;
}

}  // namespace scanc::svc
