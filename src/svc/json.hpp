// Minimal JSON for the service wire protocol (docs/service.md).
//
// A small, hostile-input-hardened JSON value type: strict recursive
// descent parsing with depth and size limits, typed errors (JsonError,
// never a crash or an unbounded allocation), insertion-ordered objects,
// and exact unsigned-integer round-tripping for the 64-bit seeds job
// specs carry.  This is deliberately not a general JSON library — it
// supports exactly what the length-prefixed protocol needs, with no
// external dependency.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace scanc::svc {

/// Parse or access failure.  Every malformed input degrades to this
/// typed error at the protocol boundary — a hostile frame fails the
/// request, never the daemon.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  /// null
  Json() = default;

  [[nodiscard]] static Json boolean(bool v);
  [[nodiscard]] static Json number(double v);
  /// Exact unsigned integer (round-trips 64-bit seeds losslessly).
  [[nodiscard]] static Json integer(std::uint64_t v);
  [[nodiscard]] static Json string(std::string v);
  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::Object;
  }

  /// Typed accessors: throw JsonError on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  /// The value as an exact non-negative integer; throws JsonError if the
  /// number is negative, fractional, or does not fit 64 bits.
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  /// Object lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  /// Object field insert/replace (must be an object).
  Json& set(std::string key, Json value);
  /// Array append (must be an array).
  Json& push_back(Json value);

  /// Compact serialization (no whitespace, escaped strings).
  [[nodiscard]] std::string dump() const;

  /// Strict parse of a complete JSON document.  Throws JsonError on any
  /// syntax error, trailing garbage, depth beyond `max_depth`, or a
  /// document over `max_bytes`.
  [[nodiscard]] static Json parse(std::string_view text,
                                  std::size_t max_depth = 32,
                                  std::size_t max_bytes = 8u << 20);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  /// Set when the number was written/parsed as a plain non-negative
  /// integer that fits 64 bits: as_u64 then returns this exact value.
  bool num_exact_ = false;
  std::uint64_t uint_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace scanc::svc
