// Length-prefixed framing over AF_UNIX stream sockets.
//
// One frame = a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON (docs/service.md).  Reads and writes are
// poll(2)-driven so every blocking call honours a util::Deadline, and
// the length prefix is validated against kMaxFrameBytes *before* any
// allocation — an oversized or garbage prefix costs the hostile client
// its connection, never the daemon its memory.
//
// All failures are the typed WireError; clean EOF between frames is the
// one non-error end state (read_frame returns false).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/cancel.hpp"

namespace scanc::svc {

/// Largest accepted frame payload.  Big enough for any real job spec or
/// result; small enough that a hostile length prefix cannot make the
/// daemon allocate unboundedly.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;  // 1 MiB

class WireError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    Io,        ///< syscall failure / connection reset
    Eof,       ///< peer closed mid-frame (truncated frame)
    TooLarge,  ///< length prefix beyond kMaxFrameBytes
    Timeout,   ///< deadline expired mid-read or mid-write
  };

  WireError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// True when `fd` becomes readable (data or EOF) within `seconds`.
/// Lets a server loop poll for the *start* of a frame cheaply, then read
/// the whole frame under a real per-frame deadline — so an idle client
/// costs nothing but a slow-loris client cannot hold a frame open
/// forever.
[[nodiscard]] bool poll_readable(int fd, double seconds);

/// Reads one complete frame into `payload`.  Returns false on a clean
/// EOF at a frame boundary (the peer hung up between requests); throws
/// WireError for everything else.  Bumps SvcFramesRead/SvcBytesRead.
bool read_frame(int fd, std::string& payload,
                const util::Deadline& deadline = {});

/// Writes one complete frame.  Throws WireError on failure.  Bumps
/// SvcFramesWritten/SvcBytesWritten.
void write_frame(int fd, std::string_view payload,
                 const util::Deadline& deadline = {});

/// Creates, binds, and listens on an AF_UNIX stream socket at `path`
/// (an existing socket file is unlinked first).  Throws WireError.
[[nodiscard]] int listen_unix(const std::string& path, int backlog = 64);

/// Accepts one connection; -1 on deadline expiry or EINTR with no
/// connection (callers poll in a loop).  Throws WireError on a real
/// accept failure.
[[nodiscard]] int accept_unix(int listen_fd, const util::Deadline& deadline);

/// Connects to the daemon socket at `path`.  Throws WireError.
[[nodiscard]] int connect_unix(const std::string& path,
                               const util::Deadline& deadline = {});

}  // namespace scanc::svc
