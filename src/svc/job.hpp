// Service jobs: the validated spec, the lifecycle state machine, typed
// failure classification, and the glue that runs one job through the
// experiment runner.
//
// Lifecycle (docs/service.md):
//
//   Queued -> Running -> Done
//                     -> Failed       (typed error, no more attempts)
//                     -> Queued       (transient failure, retry w/ backoff;
//                                      also drain: Running jobs re-queue)
//                     -> Quarantined  (retries exhausted — poisoned job)
//   Queued -> Shed                    (evicted for higher-priority work)
//
// Every failure carries a JobErrorKind; nothing escapes a job boundary
// as an untyped exception (the executor's barrier converts stragglers
// to Kind::Internal).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "expt/runner.hpp"
#include "fault/model.hpp"
#include "gen/circuit_gen.hpp"
#include "gen/suite.hpp"
#include "svc/json.hpp"
#include "util/cancel.hpp"

namespace scanc::svc {

enum class JobState : std::uint8_t {
  Queued,
  Running,
  Done,
  Failed,
  Shed,
  Quarantined,
};

[[nodiscard]] const char* to_string(JobState s) noexcept;
[[nodiscard]] constexpr bool is_terminal(JobState s) noexcept {
  return s == JobState::Done || s == JobState::Failed ||
         s == JobState::Shed || s == JobState::Quarantined;
}

enum class JobErrorKind : std::uint8_t {
  BadRequest,        ///< malformed / out-of-bounds spec (permanent)
  DeadlineExceeded,  ///< watchdog or per-job deadline cut (permanent)
  Internal,          ///< unexpected execution failure (transient: retried)
};

[[nodiscard]] const char* to_string(JobErrorKind k) noexcept;

class JobError : public std::runtime_error {
 public:
  JobError(JobErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] JobErrorKind kind() const noexcept { return kind_; }

  /// Transient errors are retried with backoff; permanent ones fail the
  /// job on the first attempt.
  [[nodiscard]] bool transient() const noexcept {
    return kind_ == JobErrorKind::Internal;
  }

 private:
  JobErrorKind kind_;
};

/// A validated job specification.  Parsed from the wire with hard caps
/// on every size knob, so an accepted job is always one the daemon can
/// execute in bounded memory.
struct JobSpec {
  enum class Kind : std::uint8_t { Suite, Gen };

  std::string id;          ///< client idempotency key, [A-Za-z0-9._-]{1,64}
  Kind kind = Kind::Suite;
  std::string circuit;     ///< suite circuit name (Kind::Suite)
  gen::GenParams gen;      ///< custom circuit (Kind::Gen)

  std::uint64_t seed = 1;
  std::size_t random_t0_length = 1000;
  fault::FaultModelKind fault_model = fault::FaultModelKind::StuckAt;
  std::size_t num_chains = 1;
  std::size_t num_threads = 1;
  bool run_dynamic_baseline = false;

  int priority = 1;                ///< 0 (sheddable) .. 9 (urgent)
  double deadline_seconds = 0.0;   ///< per-job run budget; 0 = none
};

/// Parses and validates a submit request's "spec" object.  Throws
/// JobError(BadRequest) on any missing/malformed/out-of-range field or
/// unknown key (the protocol is strict — see docs/service.md).
[[nodiscard]] JobSpec parse_job_spec(const Json& spec);

/// The spec as JSON, in the exact shape parse_job_spec accepts (the
/// drain snapshot round-trips specs through this).
[[nodiscard]] Json job_spec_json(const JobSpec& spec);

/// Resolves the spec's circuit to a runnable suite entry.  Throws
/// JobError(BadRequest) for an unknown suite circuit name.
[[nodiscard]] gen::SuiteEntry job_entry(const JobSpec& spec);

/// Stable registry key for the spec's circuit (all specs generating the
/// same circuit share one key, and thus one parsed circuit).
[[nodiscard]] std::string circuit_key(const JobSpec& spec);

/// CircuitRun -> JSON result payload (docs/service.md "result" schema).
[[nodiscard]] Json run_json(const expt::CircuitRun& run);

/// Host-injected execution context for one attempt: cancellation, the
/// shared-state registry hooks, and the per-job checkpoint journal
/// location.
struct ExecHooks {
  util::CancelToken cancel;
  std::string cache_path;  ///< per-job journal prefix; empty = no journal
  std::function<expt::SharedInputs(const gen::SuiteEntry&,
                                   fault::FaultModelKind)>
      shared_inputs;
  fault::FaultSimulator* simulator = nullptr;
  std::function<void(const char*)> progress;
};

/// Runs one attempt of `spec` to completion.  Throws JobError:
/// DeadlineExceeded when the attempt was cancelled mid-run (the partial
/// phases are checkpointed under hooks.cache_path for the next attempt),
/// Internal for any other failure.
[[nodiscard]] expt::CircuitRun execute_job(const JobSpec& spec,
                                           const ExecHooks& hooks);

}  // namespace scanc::svc
