// Cross-job shared state: parsed circuits, collapsed fault lists, and
// pooled fault simulators (whose warmed TraceCache is the expensive
// thing worth keeping).
//
// Sharing model (docs/service.md):
//
//   - Circuits and fault lists are immutable once published.  Readers
//     hold them through shared_ptr<const T> — copy-on-write in the
//     degenerate sense that nobody ever writes: a hypothetical rebuild
//     publishes a *new* object and swaps the registry pointer; jobs
//     started on the old one keep it alive until they finish.
//
//   - Simulators are mutable (per-query scratch + trace cache), so they
//     are never shared concurrently: a job takes an *exclusive* lease,
//     and the pool hands the same instance — warm cache and all — to
//     the next job on the same (circuit, model) once released.
//
// Both maps are bounded (LRU eviction of idle entries) so a daemon that
// sees thousands of distinct circuits does not grow without limit.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "expt/runner.hpp"
#include "fault/fault_sim.hpp"
#include "fault/model.hpp"
#include "gen/suite.hpp"

namespace scanc::svc {

struct RegistryLimits {
  std::size_t max_circuits = 32;   ///< distinct (circuit, model) inputs
  std::size_t max_idle_sims = 8;   ///< pooled simulators awaiting reuse
};

class SharedRegistry {
 public:
  using Limits = RegistryLimits;

  explicit SharedRegistry(Limits limits = Limits()) : limits_(limits) {}

  SharedRegistry(const SharedRegistry&) = delete;
  SharedRegistry& operator=(const SharedRegistry&) = delete;

  /// Shared inputs for `entry` under `model`, keyed by `key` (see
  /// circuit_key).  Builds and publishes on miss; concurrent callers for
  /// the same key may race to build but converge on one published copy.
  /// Counts RegistryCircuitHits / RegistryCircuitMisses.
  [[nodiscard]] expt::SharedInputs inputs(const std::string& key,
                                          const gen::SuiteEntry& entry,
                                          fault::FaultModelKind model);

  /// Exclusive lease of a pooled simulator.  Move-only RAII: releasing
  /// returns the simulator (warm trace cache included) to the pool.
  class SimLease {
   public:
    SimLease() = default;
    SimLease(SimLease&& other) noexcept { swap(other); }
    SimLease& operator=(SimLease&& other) noexcept {
      swap(other);
      return *this;
    }
    SimLease(const SimLease&) = delete;
    SimLease& operator=(const SimLease&) = delete;
    ~SimLease();

    [[nodiscard]] fault::FaultSimulator* get() const noexcept;
    [[nodiscard]] explicit operator bool() const noexcept {
      return slot_ != nullptr;
    }

   private:
    friend class SharedRegistry;
    struct Slot;
    void swap(SimLease& other) noexcept {
      std::swap(registry_, other.registry_);
      std::swap(slot_, other.slot_);
    }
    SharedRegistry* registry_ = nullptr;
    std::shared_ptr<Slot> slot_;
  };

  /// Leases a simulator for (key, model): an idle pooled one when
  /// available (RegistrySimReuses++), else a fresh instance built on the
  /// shared inputs.  The lease keeps the underlying circuit and fault
  /// list alive independently of the registry's own maps.
  [[nodiscard]] SimLease lease_simulator(const std::string& key,
                                         const gen::SuiteEntry& entry,
                                         fault::FaultModelKind model);

  /// Current pool statistics (tests / stats op).
  struct Stats {
    std::size_t circuits = 0;
    std::size_t idle_sims = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct InputsEntry {
    std::string key;  // "<circuit_key>#<model>"
    expt::SharedInputs inputs;
    std::uint64_t last_used = 0;
  };

  // SimLease::Slot (defined in registry.cpp) owns the simulator plus the
  // inputs it was built on, so a pooled simulator never outlives its
  // circuit even after the inputs map evicted that entry.
  void release(std::shared_ptr<SimLease::Slot> slot);

  expt::SharedInputs inputs_locked(const std::string& full_key,
                                   const gen::SuiteEntry& entry,
                                   fault::FaultModelKind model,
                                   std::unique_lock<std::mutex>& lock);

  Limits limits_;
  mutable std::mutex mutex_;
  std::uint64_t tick_ = 0;
  std::vector<InputsEntry> inputs_;                       // guarded by mutex_
  std::vector<std::shared_ptr<SimLease::Slot>> idle_;     // guarded by mutex_
};

}  // namespace scanc::svc
