#include "tgen/random_seq.hpp"

#include "util/rng.hpp"

namespace scanc::tgen {

sim::Sequence random_test_sequence(const netlist::Circuit& circuit,
                                   std::size_t length, std::uint64_t seed) {
  util::Rng rng(seed ^ 0x7a95eedULL);
  return sim::random_sequence(circuit.num_inputs(), length, rng);
}

}  // namespace scanc::tgen
