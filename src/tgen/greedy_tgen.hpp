// Simulation-based sequential test-sequence generation.
//
// Stand-in for STRATEGATE [10] / PROPTEST [12]: produces the long test
// sequence T0 that Phase 1 of the DAC-2001 procedure starts from.  Like
// those tools it is simulation-based: it extends the sequence segment by
// segment, evaluating a population of candidate segments by fault
// simulation and keeping the fittest.  Fitness is (new PO detections,
// latched fault effects) lexicographically — detections first, otherwise
// prefer moving fault effects into the flip-flops where a later segment
// can expose them.
//
// No scan is used: machines start in the all-X state and only primary
// outputs observe, exactly the setting in which the paper's T0 sequences
// were generated.
#pragma once

#include <cstdint>

#include "fault/fault_sim.hpp"
#include "netlist/circuit.hpp"
#include "sim/sequence.hpp"
#include "util/cancel.hpp"

namespace scanc::tgen {

/// Options for the greedy generator.
struct GreedyTgenOptions {
  std::uint64_t seed = 1;
  std::size_t candidates = 10;      ///< candidate segments per round
  std::size_t segment_min = 2;      ///< candidate segment length range
  std::size_t segment_max = 10;
  std::size_t max_length = 2000;    ///< hard cap on the sequence length
  std::size_t stall_rounds = 10;    ///< stop after this many rounds with
                                    ///< no new detection
  /// Probability (percent) that a candidate vector repeats the previous
  /// one per bit — creates the hold/walk patterns sequential faults need.
  std::uint32_t hold_percent = 35;
  /// Cooperative cancellation, polled once per greedy round.  A
  /// cancelled run returns the sequence built so far; callers that
  /// observe the raised token must discard it (the experiment runner
  /// does; see its phase checks).
  util::CancelToken cancel;
};

/// Result: the generated sequence and the classes it detects without
/// scan (all-X initial state, PO observation).
struct GreedyTgenResult {
  sim::Sequence sequence;
  fault::FaultSet detected;
};

/// Generates a test sequence for `circuit` targeting all collapsed fault
/// classes of `faults`.
[[nodiscard]] GreedyTgenResult generate_test_sequence(
    const netlist::Circuit& circuit, const fault::FaultList& faults,
    const GreedyTgenOptions& options = {});

}  // namespace scanc::tgen
