// Random test-sequence source for T0.
//
// The paper's Table 5 variant replaces the ATPG-generated sequence T0
// with a plain random primary-input sequence of length 1000; this module
// provides that source.
#pragma once

#include <cstdint>

#include "netlist/circuit.hpp"
#include "sim/sequence.hpp"

namespace scanc::tgen {

/// Random fully-specified PI sequence of the given length (paper: 1000).
[[nodiscard]] sim::Sequence random_test_sequence(
    const netlist::Circuit& circuit, std::size_t length, std::uint64_t seed);

}  // namespace scanc::tgen
