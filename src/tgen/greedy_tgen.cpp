#include "tgen/greedy_tgen.hpp"

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace scanc::tgen {

using fault::FaultSet;
using fault::FaultSimulator;
using sim::Sequence;
using sim::V3;
using sim::Vector3;

namespace {

/// One candidate segment: random vectors with per-bit hold probability.
Sequence make_candidate(const Vector3* previous, std::size_t width,
                        std::size_t length, std::uint32_t hold_percent,
                        util::Rng& rng) {
  Sequence seg;
  seg.frames.reserve(length);
  const Vector3* last = previous;
  for (std::size_t t = 0; t < length; ++t) {
    Vector3 v(width, V3::Zero);
    for (std::size_t i = 0; i < width; ++i) {
      if (last != nullptr && rng.chance(hold_percent, 100)) {
        v[i] = (*last)[i];
      } else {
        v[i] = sim::v3_from_bool(rng.coin());
      }
    }
    seg.frames.push_back(std::move(v));
    last = &seg.frames.back();
  }
  return seg;
}

}  // namespace

GreedyTgenResult generate_test_sequence(const netlist::Circuit& circuit,
                                        const fault::FaultList& faults,
                                        const GreedyTgenOptions& options) {
  FaultSimulator fsim(circuit, faults);
  FaultSet targets = fsim.all_faults();
  FaultSimulator::Session session(fsim, targets);
  util::Rng rng(options.seed ^ 0x9e3cafe5ULL);

  GreedyTgenResult result;
  result.detected = FaultSet(faults.num_classes());

  std::size_t stalled = 0;
  while (result.sequence.length() < options.max_length &&
         stalled < options.stall_rounds &&
         !options.cancel.stop_requested()) {
    const auto base = session.snapshot();
    const Vector3* prev = result.sequence.empty()
                              ? nullptr
                              : &result.sequence.frames.back();

    Sequence best_seg;
    FaultSimulator::Session::Snapshot best_snap;
    std::size_t best_new = 0;
    std::size_t best_latched = 0;
    bool have_best = false;

    for (std::size_t k = 0; k < options.candidates; ++k) {
      const std::size_t len =
          options.segment_min +
          rng.below(options.segment_max - options.segment_min + 1);
      Sequence seg = make_candidate(prev, circuit.num_inputs(), len,
                                    options.hold_percent, rng);
      std::size_t newly = 0;
      for (const Vector3& v : seg.frames) newly += session.step(v);
      const std::size_t latched = session.latched_effects();
      // Normalize fitness by length: shorter segments with equal yield
      // win, keeping T0 compact.
      const bool better =
          !have_best ||
          newly * best_seg.length() > best_new * seg.length() ||
          (newly * best_seg.length() == best_new * seg.length() &&
           latched > best_latched);
      if (better) {
        best_seg = std::move(seg);
        best_snap = session.snapshot();
        best_new = newly;
        best_latched = latched;
        have_best = true;
      }
      session.restore(base);
    }

    session.restore(best_snap);
    for (Vector3& v : best_seg.frames) {
      result.sequence.frames.push_back(std::move(v));
    }
    stalled = (best_new == 0) ? stalled + 1 : 0;
  }

  result.detected = session.detected();
  return result;
}

}  // namespace scanc::tgen
