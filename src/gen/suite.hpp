// The experiment circuit suite.
//
// One entry per circuit row in the paper's tables (ISCAS-89 + ITC-99).
// Each synthetic stand-in is generated with the real benchmark's
// published interface statistics (inputs, outputs, flip-flops, comb
// gates); see DESIGN.md §4 for the substitution rationale.  Entries also
// carry the paper's reported numbers so EXPERIMENTS.md can show
// paper-vs-measured side by side.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gen/circuit_gen.hpp"
#include "netlist/circuit.hpp"

namespace scanc::gen {

/// Reference values from the paper for one circuit (Tables 1-4).
struct PaperRow {
  int flip_flops = 0;      ///< Table 1 "ff"
  int comb_tests = 0;      ///< Table 1 "comb tsts"
  int total_faults = 0;    ///< Table 1 "flts"
  int det_t0 = 0;          ///< Table 1 detected by T0
  int det_scan = 0;        ///< Table 1 detected by tau_seq
  int det_final = 0;       ///< Table 1 detected by final test set
  int len_t0 = 0;          ///< Table 2 length of T0
  int len_scan = 0;        ///< Table 2 length of T_seq
  int added_tests = 0;     ///< Table 2 tests added in Phase 3
  int cyc_4_init = 0;      ///< Table 3 [4] initial
  int cyc_4_comp = 0;      ///< Table 3 [4] compacted
  int cyc_prop_init = 0;   ///< Table 3 proposed initial ([10]-[12] T0)
  int cyc_prop_comp = 0;   ///< Table 3 proposed compacted
  double atspeed_ave_4 = 0.0;     ///< Table 4 [4] average
  double atspeed_ave_prop = 0.0;  ///< Table 4 proposed average
};

/// One suite circuit: generation parameters plus the paper's numbers.
struct SuiteEntry {
  GenParams params;
  PaperRow paper;
  bool large = false;  ///< s35932: excluded from default runs and totals
};

/// All suite entries, in the paper's table order.
[[nodiscard]] std::span<const SuiteEntry> suite();

/// Looks up a suite entry by circuit name; nullopt if unknown.
[[nodiscard]] std::optional<SuiteEntry> find_suite_entry(
    std::string_view name);

/// Builds the synthetic circuit for a suite entry.
[[nodiscard]] netlist::Circuit build_suite_circuit(const SuiteEntry& entry);

/// Names of all suite circuits; `include_large` adds s35932.
[[nodiscard]] std::vector<std::string> suite_names(bool include_large);

}  // namespace scanc::gen
