// Synthetic sequential benchmark-circuit generator.
//
// The original ISCAS-89 / ITC-99 netlists cannot be shipped with this
// repository, so experiments run on deterministic synthetic circuits
// matched to each benchmark's published interface statistics (see
// gen/suite.hpp and DESIGN.md §4).  The generator aims for the structural
// properties the DAC-2001 procedure exercises:
//
//   - a random levelized combinational DAG with fanin 1..4, a realistic
//     gate-type mix, and fanout created by preferring so-far-unused
//     signals when picking fanins;
//   - flip-flops whose next-state logic mixes feedback with
//     PI-controlled load multiplexers, so that circuits are initializable
//     from the all-X state by input sequences alone (as the real
//     benchmarks are) while still having state depth that makes scan-in
//     selection profitable;
//   - every internal signal observable through some path: dangling
//     signals are folded into a parity tree driving the last primary
//     output.
//
// Generation is fully deterministic in (params, seed).
#pragma once

#include <cstdint>
#include <string>

#include "netlist/circuit.hpp"

namespace scanc::gen {

/// Generator parameters.
struct GenParams {
  std::string name = "synth";
  std::size_t num_inputs = 4;
  std::size_t num_outputs = 4;
  std::size_t num_flip_flops = 8;
  /// Approximate number of combinational gates (the FF support logic and
  /// the observability tree are included in the budget; the final count
  /// lands within a few percent of this for realistic sizes).
  std::size_t num_gates = 100;
  std::uint64_t seed = 1;
  /// Fraction of flip-flops whose next-state is a PI-controlled load
  /// multiplexer (easy to initialize).  The remainder get plain feedback
  /// logic (harder to control without scan).
  double pi_mux_fraction = 0.7;
};

/// Generates a circuit.  Throws std::invalid_argument on degenerate
/// parameters (no inputs or no outputs).
[[nodiscard]] netlist::Circuit generate_circuit(const GenParams& params);

}  // namespace scanc::gen
