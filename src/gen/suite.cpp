#include "gen/suite.hpp"

#include <array>

namespace scanc::gen {
namespace {

// GenParams fields: name, inputs, outputs, flip-flops, gates, seed,
// pi_mux_fraction.  Interface statistics follow the published ISCAS-89 /
// ITC-99 numbers; pi_mux_fraction is tuned lower for circuits the paper
// shows to be hard to initialize/test sequentially (low T0 coverage).
//
// PaperRow fields (in order): ff, comb_tests, total_faults, det_t0,
// det_scan, det_final, len_t0, len_scan, added_tests, cyc_4_init,
// cyc_4_comp, cyc_prop_init, cyc_prop_comp, atspeed_ave_4,
// atspeed_ave_prop.
const std::array<SuiteEntry, 19> kSuite = {{
    {{"s298", 3, 6, 14, 119, 298, 0.70},
     {14, 24, 308, 265, 279, 308, 117, 68, 10, 374, 318, 246, 218, 1.20,
      8.67},
     false},
    {{"s344", 9, 11, 15, 160, 344, 0.75},
     {15, 15, 342, 329, 339, 342, 57, 36, 2, 255, 195, 98, 98, 1.36, 12.67},
     false},
    {{"s382", 3, 6, 21, 158, 382, 0.55},
     {21, 25, 399, 364, 379, 399, 516, 445, 8, 571, 529, 663, 663, 1.09,
      50.33},
     false},
    {{"s400", 3, 6, 21, 164, 400, 0.55},
     {21, 24, 421, 380, 395, 415, 611, 561, 7, 549, 465, 757, 715, 1.20,
      94.67},
     false},
    {{"s526", 3, 6, 21, 193, 526, 0.50},
     {21, 50, 555, 454, 480, 554, 1006, 694, 24, 1121, 995, 1264, 1222, 1.14,
      31.22},
     false},
    {{"s641", 35, 24, 19, 379, 641, 0.75},
     {19, 22, 467, 404, 412, 467, 101, 81, 12, 459, 326, 359, 302, 1.47,
      9.30},
     false},
    {{"s820", 18, 19, 5, 289, 820, 0.70},
     {5, 94, 850, 814, 818, 850, 491, 339, 8, 569, 309, 397, 392, 2.24,
      43.38},
     false},
    {{"s1423", 17, 5, 74, 657, 1423, 0.60},
     {74, 26, 1515, 1414, 1480, 1501, 1024, 917, 11, 2024, 2024, 1890, 1816,
      1.00, 84.36},
     false},
    {{"s1488", 8, 19, 6, 653, 1488, 0.75},
     {6, 101, 1486, 1444, 1452, 1486, 455, 447, 8, 713, 335, 515, 509, 2.66,
      56.88},
     false},
    {{"s5378", 35, 49, 179, 2779, 5378, 0.65},
     {179, 100, 4603, 3639, 3817, 4563, 646, 585, 100, 18179, 18179, 18943,
      18585, 1.00, 6.92},
     false},
    {{"s35932", 35, 320, 1728, 16065, 35932, 0.85},
     {1728, 94, 39094, 35100, 35110, 35110, 150, 105, 0, 164254, 98572, 3561,
      3561, 1.36, 105.00},
     true},
    {{"b01", 2, 2, 5, 45, 9901, 0.80},
     {5, 24, 135, 133, 135, 135, 66, 51, 0, 149, 54, 61, 61, 4.80, 51.00},
     false},
    {{"b02", 1, 1, 4, 25, 9902, 0.80},
     {4, 15, 70, 68, 69, 70, 45, 22, 1, 79, 41, 35, 35, 2.17, 11.50},
     false},
    {{"b03", 4, 4, 30, 150, 9903, 0.65},
     {30, 43, 452, 334, 341, 452, 136, 92, 16, 1363, 724, 648, 588, 1.55,
      7.20},
     false},
    {{"b04", 11, 8, 66, 650, 9904, 0.65},
     {66, 97, 1346, 1168, 1203, 1344, 168, 129, 13, 6565, 2115, 1132, 1066,
      2.30, 10.92},
     false},
    {{"b06", 2, 6, 9, 55, 9906, 0.80},
     {9, 22, 202, 186, 198, 202, 37, 26, 2, 229, 101, 64, 64, 2.50, 9.33},
     false},
    {{"b09", 1, 1, 28, 170, 9909, 0.60},
     {28, 44, 420, 339, 350, 420, 279, 196, 13, 1304, 680, 629, 573, 1.64,
      17.42},
     false},
    {{"b10", 11, 6, 17, 190, 9910, 0.70},
     {17, 82, 512, 467, 476, 512, 190, 103, 18, 1493, 514, 461, 427, 2.88,
      7.12},
     false},
    {{"b11", 7, 6, 30, 770, 9911, 0.65},
     {30, 107, 1089, 997, 1003, 1078, 676, 629, 20, 3347, 1315, 1309, 1159,
      2.12, 40.56},
     false},
}};

}  // namespace

std::span<const SuiteEntry> suite() { return kSuite; }

std::optional<SuiteEntry> find_suite_entry(std::string_view name) {
  for (const SuiteEntry& e : kSuite) {
    if (e.params.name == name) return e;
  }
  return std::nullopt;
}

netlist::Circuit build_suite_circuit(const SuiteEntry& entry) {
  return generate_circuit(entry.params);
}

std::vector<std::string> suite_names(bool include_large) {
  std::vector<std::string> names;
  for (const SuiteEntry& e : kSuite) {
    if (e.large && !include_large) continue;
    names.push_back(e.params.name);
  }
  return names;
}

}  // namespace scanc::gen
