// Embedded reference netlists.
//
// s27 is the smallest ISCAS-89 benchmark; its netlist is tiny, public and
// reproduced verbatim here.  It anchors the test suite: simulator and
// fault-model results on s27 are checked against hand-computed values.
#pragma once

#include <string_view>

#include "netlist/circuit.hpp"

namespace scanc::gen {

/// The ISCAS-89 s27 netlist in .bench syntax.
[[nodiscard]] std::string_view s27_bench_text() noexcept;

/// Parses and returns s27.
[[nodiscard]] netlist::Circuit make_s27();

}  // namespace scanc::gen
