#include "gen/circuit_gen.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace scanc::gen {

using netlist::CircuitBuilder;
using netlist::GateType;
using netlist::NodeId;
using util::Rng;

namespace {

struct Sig {
  std::string name;
  NodeId id = netlist::kNoNode;
  bool pi_only = false;  ///< support contains no flip-flop
};

class Generator {
 public:
  explicit Generator(const GenParams& p)
      : p_(p), builder_(p.name), rng_(p.seed ^ 0x5ca9c0dace11ULL) {}

  netlist::Circuit run() {
    if (p_.num_inputs == 0 || p_.num_outputs == 0) {
      throw std::invalid_argument(
          "generate_circuit: need at least one input and one output");
    }
    make_interface();
    make_pi_cone();
    make_main_logic();
    make_next_state_logic();
    choose_outputs();
    return builder_.build();
  }

 private:
  void add_to_pool(std::string name, NodeId id, bool pi_only,
                   std::vector<std::size_t> fanins = {}) {
    pool_.push_back(Sig{std::move(name), id, pi_only});
    uses_.push_back(0);
    pool_fanins_.push_back(std::move(fanins));
    if (pi_only) pi_only_indices_.push_back(pool_.size() - 1);
  }

  /// Picks a fanin from the pool: half the time an as-yet-unused signal
  /// (creates fanout coverage), otherwise recency-biased random.
  std::size_t pick(bool pi_only_required) {
    if (pi_only_required) {
      return pi_only_indices_[rng_.below(pi_only_indices_.size())];
    }
    if (rng_.chance(1, 2)) {
      // Scan a few random slots for an unused signal.
      for (int tries = 0; tries < 6; ++tries) {
        const std::size_t i = rng_.below(pool_.size());
        if (uses_[i] == 0) return i;
      }
    }
    if (rng_.chance(7, 10)) {
      // Recency bias: quadratic ramp toward the newest signals.
      const double r = rng_.unit();
      const auto back = static_cast<std::size_t>(
          r * r * static_cast<double>(pool_.size() - 1));
      return pool_.size() - 1 - back;
    }
    return rng_.below(pool_.size());
  }

  GateType random_gate_type(std::size_t fanins) {
    if (fanins == 1) return rng_.chance(7, 10) ? GateType::Not : GateType::Buf;
    const std::uint64_t r = rng_.below(100);
    if (r < 24) return GateType::Nand;
    if (r < 44) return GateType::Nor;
    if (r < 62) return GateType::And;
    if (r < 80) return GateType::Or;
    if (r < 92) return GateType::Xor;
    return GateType::Xnor;
  }

  std::size_t random_fanin_count() {
    const std::uint64_t r = rng_.below(100);
    if (r < 8) return 1;
    if (r < 72) return 2;
    if (r < 92) return 3;
    return 4;
  }

  /// True when one candidate fanin directly drives the other: such pairs
  /// create 1-level reconvergence, the cheapest-to-avoid source of
  /// redundant logic.
  [[nodiscard]] bool directly_related(std::size_t a, std::size_t b) const {
    const auto drives = [&](std::size_t src, std::size_t dst) {
      const std::vector<std::size_t>& f = pool_fanins_[dst];
      return std::find(f.begin(), f.end(), src) != f.end();
    };
    return drives(a, b) || drives(b, a);
  }

  /// Emits one random gate drawing fanins from the pool.
  void emit_gate(bool pi_only_cone) {
    const std::size_t nf = random_fanin_count();
    std::vector<std::size_t> picks;
    picks.reserve(nf);
    for (std::size_t i = 0; i < nf; ++i) {
      std::size_t s = pick(pi_only_cone);
      // Avoid duplicate and directly-related fanins where easily
      // possible (bounded retries keep generation O(gates)).
      const auto bad = [&](std::size_t cand) {
        if (std::find(picks.begin(), picks.end(), cand) != picks.end()) {
          return true;
        }
        for (const std::size_t p : picks) {
          if (directly_related(p, cand)) return true;
        }
        return false;
      };
      for (int tries = 0; tries < 4 && bad(s); ++tries) {
        s = pick(pi_only_cone);
      }
      picks.push_back(s);
    }
    const GateType type = random_gate_type(picks.size());
    std::vector<std::string_view> fanin_names;
    fanin_names.reserve(picks.size());
    bool pi_only = true;
    for (const std::size_t s : picks) {
      fanin_names.push_back(pool_[s].name);
      pi_only = pi_only && pool_[s].pi_only;
      ++uses_[s];
    }
    const std::string name = "g" + std::to_string(gate_counter_++);
    const NodeId id = builder_.add_gate(
        type, name, std::span<const std::string_view>(fanin_names));
    add_to_pool(name, id, pi_only, std::move(picks));
  }

  void make_interface() {
    for (std::size_t i = 0; i < p_.num_inputs; ++i) {
      const std::string name = "pi" + std::to_string(i);
      const NodeId id = builder_.add_input(name);
      add_to_pool(name, id, /*pi_only=*/true);
    }
    for (std::size_t i = 0; i < p_.num_flip_flops; ++i) {
      const std::string name = "ff" + std::to_string(i);
      const std::string ns = "ns" + std::to_string(i);
      const NodeId id = builder_.add_gate(GateType::Dff, name, {ns});
      add_to_pool(name, id, /*pi_only=*/false);
    }
  }

  /// A cone of PI-only gates: the pool the load multiplexers draw their
  /// data and select functions from.  Capped by the input count — with
  /// few PIs the space of distinct functions is tiny, and overdrawing it
  /// floods the circuit with redundant (untestable-fault) logic.
  void make_pi_cone() {
    const std::size_t count = std::min(
        {p_.num_gates / 8 + 2, std::max<std::size_t>(p_.num_flip_flops, 4),
         p_.num_inputs * 2});
    for (std::size_t i = 0; i < count; ++i) emit_gate(/*pi_only_cone=*/true);
    main_emitted_ += count;
  }

  void make_main_logic() {
    // Budget the FF support logic (up to 3 extra gates per mux FF) and the
    // observability tree out of the requested gate count.
    const auto ff_cost = static_cast<std::size_t>(
        static_cast<double>(p_.num_flip_flops) *
        (3.0 * p_.pi_mux_fraction + 1.0));
    const std::size_t reserve = ff_cost + p_.num_outputs / 2 + 4;
    const std::size_t budget =
        p_.num_gates > reserve + main_emitted_
            ? p_.num_gates - reserve - main_emitted_
            : 4;
    for (std::size_t i = 0; i < budget; ++i) emit_gate(false);
    main_emitted_ += budget;
  }

  void make_next_state_logic() {
    for (std::size_t i = 0; i < p_.num_flip_flops; ++i) {
      const std::string ns = "ns" + std::to_string(i);
      if (rng_.unit() < p_.pi_mux_fraction) {
        // ns = (sel & data) | (~sel & hold): loading a PI-only value when
        // sel=1 makes the FF initializable from the all-X state.
        const std::size_t sel = rng_.below(p_.num_inputs);  // a raw PI
        const std::string& sel_name = pool_[sel].name;
        const std::size_t data = pick(/*pi_only_required=*/true);
        const std::size_t hold = pick(false);
        ++uses_[sel];
        ++uses_[data];
        ++uses_[hold];
        const std::string nsel = "nsel" + std::to_string(i);
        const std::string ld = "ld" + std::to_string(i);
        const std::string hd = "hd" + std::to_string(i);
        builder_.add_gate(GateType::Not, nsel, {sel_name});
        builder_.add_gate(GateType::And, ld, {sel_name, pool_[data].name});
        builder_.add_gate(GateType::And, hd, {nsel, pool_[hold].name});
        builder_.add_gate(GateType::Or, ns, {ld, hd});
      } else {
        // Plain feedback logic: harder to control without scan.
        const std::size_t a = pick(false);
        const std::size_t b = pick(false);
        ++uses_[a];
        ++uses_[b];
        const GateType t = random_gate_type(2);
        builder_.add_gate(t, ns, {pool_[a].name, pool_[b].name});
      }
    }
  }

  void choose_outputs() {
    // Primary outputs: distinct signals biased toward late main gates.
    std::vector<std::size_t> chosen;
    const std::size_t want = p_.num_outputs > 1 ? p_.num_outputs - 1 : 0;
    std::size_t guard = 0;
    while (chosen.size() < want && guard++ < want * 20 + 64) {
      const std::size_t s =
          p_.num_inputs + rng_.below(pool_.size() - p_.num_inputs);
      if (std::find(chosen.begin(), chosen.end(), s) != chosen.end()) {
        continue;
      }
      chosen.push_back(s);
      ++uses_[s];
      builder_.mark_output(pool_[s].name);
    }

    // Fold every dangling signal into a parity tree; its root is the last
    // primary output, making all logic (conservatively) observable.
    std::vector<std::size_t> dangling;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (uses_[i] == 0) dangling.push_back(i);
    }
    if (dangling.empty()) {
      // Nothing dangles; reuse the most recent signal as the final PO.
      builder_.mark_output(pool_.back().name);
      return;
    }
    std::string acc = pool_[dangling[0]].name;
    ++uses_[dangling[0]];
    for (std::size_t i = 1; i < dangling.size(); ++i) {
      const std::string name = "obs" + std::to_string(i);
      ++uses_[dangling[i]];
      builder_.add_gate(GateType::Xor, name, {acc, pool_[dangling[i]].name});
      acc = name;
    }
    builder_.mark_output(acc);
  }

  GenParams p_;
  CircuitBuilder builder_;
  Rng rng_;
  std::vector<Sig> pool_;
  std::vector<std::uint32_t> uses_;
  std::vector<std::vector<std::size_t>> pool_fanins_;
  std::vector<std::size_t> pi_only_indices_;
  std::size_t gate_counter_ = 0;
  std::size_t main_emitted_ = 0;
};

}  // namespace

netlist::Circuit generate_circuit(const GenParams& params) {
  return Generator(params).run();
}

}  // namespace scanc::gen
