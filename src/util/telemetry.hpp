// scanc::obs — low-overhead, thread-safe run telemetry.
//
// Three primitives (docs/observability.md has the full catalog):
//
//   Counters   monotonic uint64s from a fixed enum catalog.  Increments
//              land in per-thread sharded slots (a plain relaxed store
//              to a thread-local block — no RMW, no contention); reads
//              aggregate the live blocks plus the totals drained from
//              exited threads.  Hot simulation loops batch into a local
//              and add() once per pass, so the per-frame cost is zero.
//
//   Gauges     last-writer-wins values (cache size, thread count).
//
//   Histograms log2-bucketed nanosecond timers (count/sum/min/max +
//              buckets) for queue wait, task run, and query latency.
//
// On top of those:
//
//   Span       RAII trace span: emits one Chrome trace-event when a
//              trace file is installed (util/trace_writer.hpp), else
//              costs one relaxed load and allocates nothing.
//   PhaseSpan  Span + the current-phase gauge the heartbeat reports,
//              restored on scope exit (nesting-safe).
//   Heartbeat  optional background thread printing one progress line
//              (phase, faults detected, frames/s) per interval.
//
// Snapshots:  snapshot_counters() for deltas, credit() to merge counter
// totals carried across a kill/resume boundary (the expt runner journals
// counter snapshots at each checkpoint — docs/observability.md),
// write_metrics_json() for the --metrics-out machine snapshot and
// print_summary() for the --verbose-metrics human table.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/trace_writer.hpp"

namespace scanc::obs {

// ---------------------------------------------------------------------
// Counters.

enum class Counter : std::uint16_t {
  // Simulation kernels (fault/group_worker.cpp).
  FramesSimulated,      ///< frames evaluated by either kernel
  FramesSkipped,        ///< frames the cone kernel proved no-ops
  ConePasses,           ///< group passes run on the cone kernel
  FullPasses,           ///< group passes run on the full kernel
  ConeGatesScheduled,   ///< gates in compacted cone schedules
  ConeGatesDropped,     ///< gates cone passes did not schedule
  TdfActivations,       ///< transition-fault launch frames injected
  TdfFramesSkipped,     ///< frames skipped activation-aware (no launch)
  // Wide batch engine (fault/batch_engine.cpp).
  PpsfpBatches,         ///< pattern-parallel batch passes run
  PpsfpTestsPacked,     ///< scan tests packed into PPSFP lanes (sum)
  WideFpPasses,         ///< wide fault-parallel passes (lanes = groups)
  // Fault-free trace cache (sim/trace_cache.cpp).
  TraceCacheHits,
  TraceCacheMisses,
  TraceCacheExtensions,
  TraceCachePartialReuses,
  TraceCacheEvictions,
  // Thread pool / group execution (util/thread_pool.cpp,
  // fault/group_exec.cpp).
  PoolTasksRun,
  PoolQueueWaitNanos,   ///< summed submit -> dequeue latency
  PoolBusyNanos,        ///< summed task execution time
  GroupsExecuted,       ///< fault groups dispatched by for_each_group
  QueriesRun,           ///< FaultSimulator queries issued
  // Compaction pipeline (tcomp/pipeline.cpp, tcomp/iterate.cpp).
  FaultsDetected,       ///< cumulative per-phase detection deltas
  IterateRounds,        ///< completed Phase 1+2 rounds
  // Differential fuzzing subsystem (check/).
  CheckCasesRun,        ///< fuzz cases generated and checked
  CheckQueriesCompared, ///< cross-kernel / oracle comparisons performed
  CheckDivergences,     ///< divergences detected (should stay 0)
  CheckShrinkSteps,     ///< shrinker reduction attempts
  CheckCaseTimeouts,    ///< cases cut by the per-case watchdog
  // Compaction service (svc/daemon.cpp) — job lifecycle.
  JobsSubmitted,        ///< submit requests that parsed to a valid spec
  JobsAccepted,         ///< jobs admitted to the queue
  JobsRejected,         ///< jobs refused at admission (queue saturated)
  JobsShed,             ///< queued jobs evicted for higher-priority work
  JobsStarted,          ///< job attempts begun by an executor
  JobsDone,             ///< jobs that reached Done
  JobsFailed,           ///< jobs that reached Failed (typed error)
  JobsRetried,          ///< attempts re-queued after a transient failure
  JobsQuarantined,      ///< jobs poisoned after exhausting retries
  JobsDeadlineCut,      ///< running jobs cancelled by the watchdog
  JobsResumed,          ///< jobs re-enqueued from a drain snapshot
  // Compaction service — wire protocol and connections.
  SvcConnections,       ///< client connections accepted
  SvcFramesRead,        ///< well-formed frames received
  SvcFramesWritten,     ///< frames sent
  SvcBytesRead,         ///< payload bytes received
  SvcBytesWritten,      ///< payload bytes sent
  SvcProtocolErrors,    ///< malformed frames / requests (connection dropped)
  // Compaction service — shared-state registry.
  RegistryCircuitHits,  ///< parsed-circuit reuses across jobs
  RegistryCircuitMisses,///< circuits parsed/generated fresh
  RegistrySimReuses,    ///< pooled simulators (warm TraceCache) reused
  // SAT ATPG backend (atpg/sat_backend.cpp).
  AtpgSatSolveCalls,    ///< per-fault SAT solves issued
  AtpgSatConflicts,     ///< CDCL conflicts across all solves
  AtpgSatProofs,        ///< untestability proofs (UNSAT verdicts)
  AtpgSatFallbacks,     ///< --atpg=auto faults retried on SAT after abort
  kCount
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

/// Stable snake_case name (JSON key / journal key) of a counter.
[[nodiscard]] const char* counter_name(Counter c) noexcept;

/// Point-in-time aggregate of every counter.
using CounterSnapshot = std::array<std::uint64_t, kNumCounters>;

/// Element-wise saturating difference `after - before`.
[[nodiscard]] CounterSnapshot counter_delta(const CounterSnapshot& after,
                                            const CounterSnapshot& before);

/// Adds `v` to counter `c`.  Safe from any thread; a relaxed store to a
/// thread-local slot (no allocation after the thread's first call).
void add(Counter c, std::uint64_t v = 1) noexcept;

/// Aggregated value of one counter (live threads + retired + credited).
[[nodiscard]] std::uint64_t value(Counter c);

/// Aggregated values of all counters.
[[nodiscard]] CounterSnapshot snapshot_counters();

/// Merges counter totals recorded by an earlier (dead) process into this
/// one — the resume path for --metrics-out cumulative reporting.
void credit(const CounterSnapshot& carried);

/// Zeroes every counter, gauge, histogram, and phase record.  Test-only:
/// callers must be quiescent (no concurrent writers).
void reset();

// ---------------------------------------------------------------------
// Gauges.

enum class Gauge : std::uint16_t {
  TraceCacheSize,     ///< live entries in the fault-free trace cache
  ThreadsConfigured,  ///< last worker-thread count installed
  SvcQueueDepth,      ///< jobs currently queued in the service
  SvcJobsRunning,     ///< jobs currently executing
  SimdLaneWidth,      ///< resolved wide-engine width in bits (64 = off)
  PpsfpTestsPerPass,  ///< lane capacity of the last PPSFP batch pass
  kCount
};

inline constexpr std::size_t kNumGauges =
    static_cast<std::size_t>(Gauge::kCount);

[[nodiscard]] const char* gauge_name(Gauge g) noexcept;
void set_gauge(Gauge g, std::uint64_t v) noexcept;
[[nodiscard]] std::uint64_t gauge(Gauge g) noexcept;

// ---------------------------------------------------------------------
// Histograms (log2 nanosecond buckets: bucket i counts samples in
// [2^i, 2^(i+1)) ns; bucket 0 includes 0).

enum class Histogram : std::uint16_t {
  QueueWaitNanos,  ///< thread-pool submit -> dequeue latency
  TaskRunNanos,    ///< thread-pool task execution time
  QueryNanos,      ///< FaultSimulator query wall time
  JobQueueNanos,   ///< service job admission -> first execution
  JobRunNanos,     ///< service job execution time (final attempt)
  JobLatencyNanos, ///< service job admission -> terminal state
  kCount
};

inline constexpr std::size_t kNumHistograms =
    static_cast<std::size_t>(Histogram::kCount);
inline constexpr std::size_t kHistogramBuckets = 40;

struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

[[nodiscard]] const char* histogram_name(Histogram h) noexcept;
void record(Histogram h, std::uint64_t nanos) noexcept;
[[nodiscard]] HistogramData histogram(Histogram h);

/// RAII timer: on destruction adds the elapsed nanoseconds to `counter`
/// (pass Counter::kCount for none) and records them in `hist` (pass
/// Histogram::kCount for none).
class ScopedTimer {
 public:
  explicit ScopedTimer(Counter counter,
                       Histogram hist = Histogram::kCount) noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Counter counter_;
  Histogram hist_;
  std::uint64_t start_ns_;
};

// ---------------------------------------------------------------------
// Phase accounting (the paper's per-phase cost tables).

struct PhaseRecord {
  std::string name;
  double seconds = 0.0;
  std::uint64_t faults_delta = 0;  ///< newly detected faults this phase
};

/// Appends one phase record (thread-safe) and bumps
/// Counter::FaultsDetected by `faults_delta`.
void record_phase(const char* name, double seconds,
                  std::uint64_t faults_delta);

[[nodiscard]] std::vector<PhaseRecord> phase_records();

/// Current pipeline phase, for the heartbeat.  `literal` must be a
/// string literal (or otherwise outlive all readers).
void set_current_phase(const char* literal) noexcept;
[[nodiscard]] const char* current_phase() noexcept;

// ---------------------------------------------------------------------
// Spans.

/// RAII trace span: one complete Chrome trace event on destruction when
/// a trace file is installed; with tracing off, construction is a single
/// relaxed load and nothing is allocated either way.
class Span {
 public:
  explicit Span(const char* name, const char* category = "query") noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::uint64_t start_us_;
  bool active_;
};

/// Span that also publishes `name` as the current phase for the
/// heartbeat, restoring the enclosing phase on scope exit.
class PhaseSpan {
 public:
  explicit PhaseSpan(const char* name) noexcept;
  ~PhaseSpan();
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  Span span_;
  const char* previous_;
};

// ---------------------------------------------------------------------
// Run-level reporting.

/// Machine-readable snapshot: counters, gauges, histograms, derived
/// ratios (frame skip rate, cache hit ratio, cone pass share), and phase
/// records.  Schema "scanc-metrics-v1" (bench/check_metrics_schema.py).
void write_metrics_json(std::ostream& out);

/// write_metrics_json to `path` (atomically enough for CI consumption:
/// plain create/truncate).  Returns false on IO failure.
bool write_metrics_file(const std::string& path);

/// Human-readable end-of-run table (the --verbose-metrics output).
void print_summary(std::ostream& out);

/// Background progress line printer:
///   [obs] phase=<phase> faults=<n> frames=<n> frames/s=<rate> ...
/// start() spawns the thread; stop() (or destruction) joins it.  Output
/// defaults to stderr.
class Heartbeat {
 public:
  Heartbeat() = default;
  ~Heartbeat();
  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  void start(double interval_seconds, std::ostream* out = nullptr);
  void stop();

 private:
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace scanc::obs
