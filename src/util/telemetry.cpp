#include "util/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <ostream>
#include <thread>

namespace scanc::obs {
namespace {

// ---------------------------------------------------------------------
// Registry: per-thread counter blocks + global state.

struct ThreadBlock {
  // Written only by the owning thread (relaxed store), read by
  // aggregation (relaxed load) — per-slot single-writer, so no RMW is
  // needed and increments never contend.
  std::array<std::atomic<std::uint64_t>, kNumCounters> slots{};
};

struct HistogramSlot {
  HistogramData data;  // guarded by Registry::mutex
};

class Registry {
 public:
  static Registry& instance() {
    // Leaked singleton: outlives every static and thread_local
    // destructor, so counter drains at thread exit are always safe.
    static Registry* r = new Registry;
    return *r;
  }

  void attach(ThreadBlock* block) {
    const std::lock_guard<std::mutex> lock(mutex_);
    blocks_.push_back(block);
  }

  void detach(ThreadBlock* block) {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Drain the dying thread's totals so they survive the block.
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      retired_[i] += block->slots[i].load(std::memory_order_relaxed);
    }
    blocks_.erase(std::find(blocks_.begin(), blocks_.end(), block));
  }

  CounterSnapshot aggregate() {
    const std::lock_guard<std::mutex> lock(mutex_);
    CounterSnapshot out = retired_;
    for (const ThreadBlock* b : blocks_) {
      for (std::size_t i = 0; i < kNumCounters; ++i) {
        out[i] += b->slots[i].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

  void credit(const CounterSnapshot& carried) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      retired_[i] += carried[i];
    }
  }

  void record(Histogram h, std::uint64_t nanos) {
    const std::lock_guard<std::mutex> lock(mutex_);
    HistogramData& d = hists_[static_cast<std::size_t>(h)].data;
    if (d.count == 0 || nanos < d.min) d.min = nanos;
    if (nanos > d.max) d.max = nanos;
    ++d.count;
    d.sum += nanos;
    const std::size_t bucket = std::min<std::size_t>(
        kHistogramBuckets - 1,
        nanos == 0 ? 0 : static_cast<std::size_t>(std::bit_width(nanos) - 1));
    ++d.buckets[bucket];
  }

  HistogramData histogram(Histogram h) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return hists_[static_cast<std::size_t>(h)].data;
  }

  void record_phase(PhaseRecord rec) {
    const std::lock_guard<std::mutex> lock(mutex_);
    phases_.push_back(std::move(rec));
  }

  std::vector<PhaseRecord> phase_records() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return phases_;
  }

  void reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    retired_.fill(0);
    for (ThreadBlock* b : blocks_) {
      for (auto& slot : b->slots) slot.store(0, std::memory_order_relaxed);
    }
    for (HistogramSlot& h : hists_) h.data = HistogramData{};
    phases_.clear();
    for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  }

  std::array<std::atomic<std::uint64_t>, kNumGauges> gauges_{};

 private:
  std::mutex mutex_;
  std::vector<ThreadBlock*> blocks_;
  CounterSnapshot retired_{};
  std::array<HistogramSlot, kNumHistograms> hists_{};
  std::vector<PhaseRecord> phases_;
};

/// Per-thread slot block, registered on first use and drained into the
/// registry when the thread exits.
ThreadBlock& thread_block() {
  thread_local struct Holder {
    ThreadBlock block;
    Holder() { Registry::instance().attach(&block); }
    ~Holder() { Registry::instance().detach(&block); }
  } holder;
  return holder.block;
}

std::atomic<const char*> g_current_phase{""};

std::uint64_t now_nanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------------
// Counters.

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::FramesSimulated: return "frames_simulated";
    case Counter::FramesSkipped: return "frames_skipped";
    case Counter::ConePasses: return "cone_passes";
    case Counter::FullPasses: return "full_passes";
    case Counter::ConeGatesScheduled: return "cone_gates_scheduled";
    case Counter::ConeGatesDropped: return "cone_gates_dropped";
    case Counter::TdfActivations: return "tdf_activations";
    case Counter::TdfFramesSkipped: return "tdf_frames_skipped";
    case Counter::PpsfpBatches: return "ppsfp_batches";
    case Counter::PpsfpTestsPacked: return "ppsfp_tests_packed";
    case Counter::WideFpPasses: return "wide_fp_passes";
    case Counter::TraceCacheHits: return "trace_cache_hits";
    case Counter::TraceCacheMisses: return "trace_cache_misses";
    case Counter::TraceCacheExtensions: return "trace_cache_extensions";
    case Counter::TraceCachePartialReuses:
      return "trace_cache_partial_reuses";
    case Counter::TraceCacheEvictions: return "trace_cache_evictions";
    case Counter::PoolTasksRun: return "pool_tasks_run";
    case Counter::PoolQueueWaitNanos: return "pool_queue_wait_ns";
    case Counter::PoolBusyNanos: return "pool_busy_ns";
    case Counter::GroupsExecuted: return "groups_executed";
    case Counter::QueriesRun: return "queries_run";
    case Counter::FaultsDetected: return "faults_detected";
    case Counter::IterateRounds: return "iterate_rounds";
    case Counter::CheckCasesRun: return "check_cases_run";
    case Counter::CheckQueriesCompared: return "check_queries_compared";
    case Counter::CheckDivergences: return "check_divergences";
    case Counter::CheckShrinkSteps: return "check_shrink_steps";
    case Counter::CheckCaseTimeouts: return "check_case_timeouts";
    case Counter::JobsSubmitted: return "jobs_submitted";
    case Counter::JobsAccepted: return "jobs_accepted";
    case Counter::JobsRejected: return "jobs_rejected";
    case Counter::JobsShed: return "jobs_shed";
    case Counter::JobsStarted: return "jobs_started";
    case Counter::JobsDone: return "jobs_done";
    case Counter::JobsFailed: return "jobs_failed";
    case Counter::JobsRetried: return "jobs_retried";
    case Counter::JobsQuarantined: return "jobs_quarantined";
    case Counter::JobsDeadlineCut: return "jobs_deadline_cut";
    case Counter::JobsResumed: return "jobs_resumed";
    case Counter::SvcConnections: return "svc_connections";
    case Counter::SvcFramesRead: return "svc_frames_read";
    case Counter::SvcFramesWritten: return "svc_frames_written";
    case Counter::SvcBytesRead: return "svc_bytes_read";
    case Counter::SvcBytesWritten: return "svc_bytes_written";
    case Counter::SvcProtocolErrors: return "svc_protocol_errors";
    case Counter::RegistryCircuitHits: return "registry_circuit_hits";
    case Counter::RegistryCircuitMisses: return "registry_circuit_misses";
    case Counter::RegistrySimReuses: return "registry_sim_reuses";
    case Counter::AtpgSatSolveCalls: return "atpg_sat_solve_calls";
    case Counter::AtpgSatConflicts: return "atpg_sat_conflicts";
    case Counter::AtpgSatProofs: return "atpg_sat_proofs";
    case Counter::AtpgSatFallbacks: return "atpg_sat_fallbacks";
    case Counter::kCount: break;
  }
  return "?";
}

CounterSnapshot counter_delta(const CounterSnapshot& after,
                              const CounterSnapshot& before) {
  CounterSnapshot out{};
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    out[i] = after[i] >= before[i] ? after[i] - before[i] : 0;
  }
  return out;
}

void add(Counter c, std::uint64_t v) noexcept {
  auto& slot = thread_block().slots[static_cast<std::size_t>(c)];
  // Single-writer slot: load + store beats an RMW on the hot path.
  slot.store(slot.load(std::memory_order_relaxed) + v,
             std::memory_order_relaxed);
}

std::uint64_t value(Counter c) {
  return Registry::instance().aggregate()[static_cast<std::size_t>(c)];
}

CounterSnapshot snapshot_counters() { return Registry::instance().aggregate(); }

void credit(const CounterSnapshot& carried) {
  Registry::instance().credit(carried);
}

void reset() {
  Registry::instance().reset();
  g_current_phase.store("", std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Gauges.

const char* gauge_name(Gauge g) noexcept {
  switch (g) {
    case Gauge::TraceCacheSize: return "trace_cache_size";
    case Gauge::ThreadsConfigured: return "threads_configured";
    case Gauge::SvcQueueDepth: return "svc_queue_depth";
    case Gauge::SvcJobsRunning: return "svc_jobs_running";
    case Gauge::SimdLaneWidth: return "simd_lane_width";
    case Gauge::PpsfpTestsPerPass: return "ppsfp_tests_per_pass";
    case Gauge::kCount: break;
  }
  return "?";
}

void set_gauge(Gauge g, std::uint64_t v) noexcept {
  Registry::instance().gauges_[static_cast<std::size_t>(g)].store(
      v, std::memory_order_relaxed);
}

std::uint64_t gauge(Gauge g) noexcept {
  return Registry::instance().gauges_[static_cast<std::size_t>(g)].load(
      std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Histograms.

const char* histogram_name(Histogram h) noexcept {
  switch (h) {
    case Histogram::QueueWaitNanos: return "queue_wait_ns";
    case Histogram::TaskRunNanos: return "task_run_ns";
    case Histogram::QueryNanos: return "query_ns";
    case Histogram::JobQueueNanos: return "job_queue_ns";
    case Histogram::JobRunNanos: return "job_run_ns";
    case Histogram::JobLatencyNanos: return "job_latency_ns";
    case Histogram::kCount: break;
  }
  return "?";
}

void record(Histogram h, std::uint64_t nanos) noexcept {
  Registry::instance().record(h, nanos);
}

HistogramData histogram(Histogram h) {
  return Registry::instance().histogram(h);
}

ScopedTimer::ScopedTimer(Counter counter, Histogram hist) noexcept
    : counter_(counter), hist_(hist), start_ns_(now_nanos()) {}

ScopedTimer::~ScopedTimer() {
  const std::uint64_t elapsed = now_nanos() - start_ns_;
  if (counter_ != Counter::kCount) add(counter_, elapsed);
  if (hist_ != Histogram::kCount) record(hist_, elapsed);
}

// ---------------------------------------------------------------------
// Phase accounting.

void record_phase(const char* name, double seconds,
                  std::uint64_t faults_delta) {
  Registry::instance().record_phase(
      PhaseRecord{name, seconds, faults_delta});
  if (faults_delta != 0) add(Counter::FaultsDetected, faults_delta);
}

std::vector<PhaseRecord> phase_records() {
  return Registry::instance().phase_records();
}

void set_current_phase(const char* literal) noexcept {
  g_current_phase.store(literal, std::memory_order_relaxed);
}

const char* current_phase() noexcept {
  return g_current_phase.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Spans.

Span::Span(const char* name, const char* category) noexcept
    : name_(name),
      category_(category),
      start_us_(0),
      active_(tracing_enabled()) {
  if (active_) start_us_ = now_micros();
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end = now_micros();
  trace_event(name_, category_, start_us_, end - start_us_);
}

PhaseSpan::PhaseSpan(const char* name) noexcept
    : span_(name, "phase"), previous_(current_phase()) {
  set_current_phase(name);
}

PhaseSpan::~PhaseSpan() { set_current_phase(previous_); }

// ---------------------------------------------------------------------
// Run-level reporting.

namespace {

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) /
                              static_cast<double>(den);
}

struct Derived {
  double frame_skip_ratio;
  double trace_cache_hit_ratio;
  double cone_pass_ratio;
  double cone_gates_dropped_ratio;
  double pool_mean_queue_wait_ns;
};

Derived derive(const CounterSnapshot& s) {
  const auto at = [&s](Counter c) {
    return s[static_cast<std::size_t>(c)];
  };
  Derived d{};
  d.frame_skip_ratio =
      ratio(at(Counter::FramesSkipped),
            at(Counter::FramesSimulated) + at(Counter::FramesSkipped));
  const std::uint64_t reuse = at(Counter::TraceCacheHits) +
                              at(Counter::TraceCacheExtensions) +
                              at(Counter::TraceCachePartialReuses);
  d.trace_cache_hit_ratio =
      ratio(reuse, reuse + at(Counter::TraceCacheMisses));
  d.cone_pass_ratio =
      ratio(at(Counter::ConePasses),
            at(Counter::ConePasses) + at(Counter::FullPasses));
  d.cone_gates_dropped_ratio =
      ratio(at(Counter::ConeGatesDropped),
            at(Counter::ConeGatesScheduled) +
                at(Counter::ConeGatesDropped));
  d.pool_mean_queue_wait_ns =
      ratio(at(Counter::PoolQueueWaitNanos), at(Counter::PoolTasksRun));
  return d;
}

void json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

void write_metrics_json(std::ostream& out) {
  const CounterSnapshot s = snapshot_counters();
  const Derived d = derive(s);
  // Snapshot ordering stamps: `sequence` is process-monotonic across
  // snapshots (so multiple --metrics-out style dumps from one run are
  // orderable even when written within the same millisecond) and
  // `emitted_unix_ms` anchors the snapshot to wall-clock time.
  static std::atomic<std::uint64_t> snapshot_sequence{0};
  const std::uint64_t seq = ++snapshot_sequence;
  const std::uint64_t unix_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  out << "{\n  \"schema\": \"scanc-metrics-v1\",\n  \"sequence\": " << seq
      << ",\n  \"emitted_unix_ms\": " << unix_ms << ",\n  \"counters\": {";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << counter_name(static_cast<Counter>(i)) << "\": " << s[i];
  }
  out << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << gauge_name(static_cast<Gauge>(i))
        << "\": " << gauge(static_cast<Gauge>(i));
  }
  out << "\n  },\n  \"derived\": {\n";
  const auto old_precision = out.precision(6);
  out << "    \"frame_skip_ratio\": " << d.frame_skip_ratio << ",\n"
      << "    \"trace_cache_hit_ratio\": " << d.trace_cache_hit_ratio
      << ",\n"
      << "    \"cone_pass_ratio\": " << d.cone_pass_ratio << ",\n"
      << "    \"cone_gates_dropped_ratio\": " << d.cone_gates_dropped_ratio
      << ",\n"
      << "    \"pool_mean_queue_wait_ns\": " << d.pool_mean_queue_wait_ns
      << "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < kNumHistograms; ++i) {
    const HistogramData h = histogram(static_cast<Histogram>(i));
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << histogram_name(static_cast<Histogram>(i)) << "\": {\"count\": "
        << h.count << ", \"sum\": " << h.sum << ", \"min\": " << h.min
        << ", \"max\": " << h.max << ", \"buckets\": [";
    // Trailing zero buckets are noise; emit up to the last non-zero.
    std::size_t last = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] != 0) last = b + 1;
    }
    for (std::size_t b = 0; b < last; ++b) {
      out << (b == 0 ? "" : ", ") << h.buckets[b];
    }
    out << "]}";
  }
  out << "\n  },\n  \"phases\": [";
  const std::vector<PhaseRecord> phases = phase_records();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": ";
    json_string(out, phases[i].name);
    out << ", \"seconds\": " << phases[i].seconds
        << ", \"faults_delta\": " << phases[i].faults_delta << "}";
  }
  out << "\n  ]\n}\n";
  out.precision(old_precision);
}

bool write_metrics_file(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write_metrics_json(out);
  return static_cast<bool>(out);
}

void print_summary(std::ostream& out) {
  const CounterSnapshot s = snapshot_counters();
  const Derived d = derive(s);
  const auto at = [&s](Counter c) {
    return s[static_cast<std::size_t>(c)];
  };
  const auto row = [&out](const char* name, std::uint64_t v) {
    out << "  " << std::left << std::setw(28) << name << std::right
        << std::setw(16) << v << "\n";
  };
  out << "[obs] run metrics\n";
  out << " kernels\n";
  row("frames simulated", at(Counter::FramesSimulated));
  row("frames skipped", at(Counter::FramesSkipped));
  row("cone passes", at(Counter::ConePasses));
  row("full passes", at(Counter::FullPasses));
  row("cone gates scheduled", at(Counter::ConeGatesScheduled));
  row("cone gates dropped", at(Counter::ConeGatesDropped));
  out << " trace cache\n";
  row("hits", at(Counter::TraceCacheHits));
  row("misses", at(Counter::TraceCacheMisses));
  row("extensions", at(Counter::TraceCacheExtensions));
  row("partial reuses", at(Counter::TraceCachePartialReuses));
  row("evictions", at(Counter::TraceCacheEvictions));
  out << " execution\n";
  row("queries run", at(Counter::QueriesRun));
  row("groups executed", at(Counter::GroupsExecuted));
  row("pool tasks run", at(Counter::PoolTasksRun));
  row("pool queue wait ns", at(Counter::PoolQueueWaitNanos));
  row("pool busy ns", at(Counter::PoolBusyNanos));
  out << " pipeline\n";
  row("faults detected", at(Counter::FaultsDetected));
  row("iterate rounds", at(Counter::IterateRounds));
  out << " derived\n";
  const auto pct = [&out](const char* name, double v) {
    out << "  " << std::left << std::setw(28) << name << std::right
        << std::setw(15) << std::fixed << std::setprecision(1) << v * 100.0
        << "%\n";
    out.unsetf(std::ios::fixed);
  };
  pct("frame skip ratio", d.frame_skip_ratio);
  pct("trace cache hit ratio", d.trace_cache_hit_ratio);
  pct("cone pass ratio", d.cone_pass_ratio);
  pct("cone gates dropped ratio", d.cone_gates_dropped_ratio);
  const std::vector<PhaseRecord> phases = phase_records();
  if (!phases.empty()) {
    out << " phases (name, seconds, faults)\n";
    for (const PhaseRecord& p : phases) {
      out << "  " << std::left << std::setw(28) << p.name << std::right
          << std::setw(12) << std::fixed << std::setprecision(3) << p.seconds
          << std::setw(10) << p.faults_delta << "\n";
      out.unsetf(std::ios::fixed);
    }
  }
}

// ---------------------------------------------------------------------
// Heartbeat.

struct Heartbeat::Impl {
  std::thread thread;
  std::mutex mutex;
  std::condition_variable cv;
  bool stop = false;

  void loop(double interval_seconds, std::ostream* out) {
    CounterSnapshot last = snapshot_counters();
    auto last_time = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mutex);
    while (!stop) {
      const auto wake =
          last_time + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(interval_seconds));
      if (cv.wait_until(lock, wake, [this] { return stop; })) break;
      lock.unlock();
      const CounterSnapshot now = snapshot_counters();
      const auto now_time = std::chrono::steady_clock::now();
      const double dt =
          std::chrono::duration<double>(now_time - last_time).count();
      const auto at = [&now](Counter c) {
        return now[static_cast<std::size_t>(c)];
      };
      const CounterSnapshot delta = counter_delta(now, last);
      const double fps =
          dt > 0.0
              ? static_cast<double>(
                    delta[static_cast<std::size_t>(
                        Counter::FramesSimulated)]) /
                    dt
              : 0.0;
      const char* phase = current_phase();
      (*out) << "[obs] phase=" << (phase[0] == '\0' ? "-" : phase)
             << " faults=" << at(Counter::FaultsDetected)
             << " frames=" << at(Counter::FramesSimulated) << " frames/s="
             << std::fixed << std::setprecision(0) << fps
             << " queries=" << at(Counter::QueriesRun) << std::endl;
      out->unsetf(std::ios::fixed);
      last = now;
      last_time = now_time;
      lock.lock();
    }
  }
};

Heartbeat::~Heartbeat() { stop(); }

void Heartbeat::start(double interval_seconds, std::ostream* out) {
  if (impl_ != nullptr || interval_seconds <= 0.0) return;
  impl_ = new Impl;
  std::ostream* sink = out != nullptr ? out : &std::cerr;
  impl_->thread = std::thread(
      [this, interval_seconds, sink] { impl_->loop(interval_seconds, sink); });
}

void Heartbeat::stop() {
  if (impl_ == nullptr) return;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  delete impl_;
  impl_ = nullptr;
}

}  // namespace scanc::obs
