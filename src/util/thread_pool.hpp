// Fixed-size worker pool with a shared work queue.
//
// The pool owns its threads for its whole lifetime (no spawn-per-call),
// tasks are plain std::function<void()>, and parallel_for() provides the
// blocking fork-join shape every parallel engine in the library uses:
// run fn(0..n-1) across the pool, wait for all of them, and rethrow the
// first exception a task raised on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scanc::util {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains nothing: pending tasks still run, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

  /// Enqueues one task.  Tasks must not throw out of the queue — use
  /// parallel_for for exception-propagating batches.
  void submit(std::function<void()> task);

  /// Runs fn(i) for every i in [0, n) across the pool and blocks until
  /// all invocations complete.  If any invocation throws, remaining
  /// not-yet-started invocations are skipped and the first exception is
  /// rethrown here.  With an empty pool the calls run inline.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Maps a thread-count knob to an actual count: 0 means "one per
  /// hardware thread", anything else is taken literally (minimum 1).
  [[nodiscard]] static std::size_t resolve_threads(
      std::size_t requested) noexcept;

 private:
  void worker_loop();

  struct QueuedTask {
    std::function<void()> fn;
    std::uint64_t enqueue_ns;  // for queue-wait telemetry
  };

  std::vector<std::thread> threads_;
  std::deque<QueuedTask> queue_;  // guarded by mutex_
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace scanc::util
