// Dynamic bitset tuned for fault-set bookkeeping: fixed size at
// construction, word-level access for bit-parallel engines, fast
// population count and set algebra.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace scanc::util {

/// Fixed-size dynamic bitset.
class Bitset {
 public:
  Bitset() = default;

  /// Creates a bitset of `size` bits, all clear (or all set).
  explicit Bitset(std::size_t size, bool value = false)
      : size_(size),
        words_((size + 63) / 64, value ? ~0ULL : 0ULL) {
    trim();
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool test(std::size_t i) const {
    assert(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i) {
    assert(i < size_);
    words_[i >> 6] |= 1ULL << (i & 63);
  }

  void reset(std::size_t i) {
    assert(i < size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  void assign(std::size_t i, bool v) { v ? set(i) : reset(i); }

  /// Clears all bits.
  void clear() { words_.assign(words_.size(), 0); }

  /// Sets all bits.
  void fill() {
    words_.assign(words_.size(), ~0ULL);
    trim();
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t n = 0;
    for (const std::uint64_t w : words_) n += std::popcount(w);
    return n;
  }

  /// True if no bit is set.
  [[nodiscard]] bool none() const noexcept {
    for (const std::uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// True if all bits are set.
  [[nodiscard]] bool all() const noexcept { return count() == size_; }

  /// True if any bit of `other` is outside this set.  Sizes must match.
  [[nodiscard]] bool contains(const Bitset& other) const {
    assert(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (other.words_[i] & ~words_[i]) return false;
    }
    return true;
  }

  /// Index of the first set bit, or size() if none.
  [[nodiscard]] std::size_t find_first() const noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] != 0) {
        return i * 64 + static_cast<std::size_t>(std::countr_zero(words_[i]));
      }
    }
    return size_;
  }

  /// Index of the first set bit at or after `from`, or size() if none.
  [[nodiscard]] std::size_t find_next(std::size_t from) const noexcept {
    if (from >= size_) return size_;
    std::size_t wi = from >> 6;
    std::uint64_t w = words_[wi] & (~0ULL << (from & 63));
    while (true) {
      if (w != 0) {
        return wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      }
      if (++wi >= words_.size()) return size_;
      w = words_[wi];
    }
  }

  /// Invokes `fn(index)` for every set bit, in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int b = std::countr_zero(w);
        fn(wi * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

  Bitset& operator|=(const Bitset& o) {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }

  Bitset& operator&=(const Bitset& o) {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  /// Removes from this set every bit present in `o` (set difference).
  Bitset& operator-=(const Bitset& o) {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= ~o.words_[i];
    }
    return *this;
  }

  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }
  friend Bitset operator-(Bitset a, const Bitset& b) { return a -= b; }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Raw word access (for bit-parallel detection recording).
  [[nodiscard]] std::uint64_t word(std::size_t wi) const {
    return words_[wi];
  }
  [[nodiscard]] std::size_t num_words() const noexcept {
    return words_.size();
  }

 private:
  void trim() {
    if (size_ & 63) {
      words_.back() &= (1ULL << (size_ & 63)) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace scanc::util
