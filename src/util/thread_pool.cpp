#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <utility>

#include "util/telemetry.hpp"

namespace scanc::util {

namespace {

std::uint64_t clock_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  obs::set_gauge(obs::Gauge::ThreadsConfigured, n);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing left
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const std::uint64_t start_ns = clock_ns();
    const std::uint64_t wait_ns =
        start_ns >= task.enqueue_ns ? start_ns - task.enqueue_ns : 0;
    task.fn();
    const std::uint64_t busy_ns = clock_ns() - start_ns;
    obs::add(obs::Counter::PoolTasksRun);
    obs::add(obs::Counter::PoolQueueWaitNanos, wait_ns);
    obs::add(obs::Counter::PoolBusyNanos, busy_ns);
    obs::record(obs::Histogram::QueueWaitNanos, wait_ns);
    obs::record(obs::Histogram::TaskRunNanos, busy_ns);
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(QueuedTask{std::move(task), clock_ns()});
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Batch {
    std::mutex m;
    std::condition_variable done;
    std::size_t pending = 0;
    std::exception_ptr error;            // first failure, guarded by m
    std::atomic<bool> failed{false};     // fast-path skip flag
  };
  const auto batch = std::make_shared<Batch>();
  batch->pending = n;

  // fn is captured by reference: the caller blocks below until every
  // task has finished, so the reference outlives all uses.
  for (std::size_t i = 0; i < n; ++i) {
    submit([batch, &fn, i] {
      if (!batch->failed.load(std::memory_order_acquire)) {
        try {
          fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(batch->m);
          if (!batch->error) batch->error = std::current_exception();
          batch->failed.store(true, std::memory_order_release);
        }
      }
      const std::lock_guard<std::mutex> lock(batch->m);
      if (--batch->pending == 0) batch->done.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(batch->m);
  batch->done.wait(lock, [&] { return batch->pending == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace scanc::util
