// Crash-safe on-disk blob store: atomic replacement + checksummed
// envelope.
//
// Writes go to a temporary file in the same directory — fsync'd before
// the rename(2) that publishes it, with the parent directory fsync'd
// after — so a reader (even after a crash or power loss) never observes
// a half-written or missing-but-committed file: it sees either the old
// content or the new content (the full contract is documented at
// store_write's definition).  Payloads
// are wrapped in a one-line envelope carrying a CRC32 and the payload
// size:
//
//   scanc-store 1 <crc32-hex8> <size>\n<payload bytes>
//
// store_read verifies the magic, size, and checksum and returns nullopt
// on any mismatch — a truncated write, a corrupt or foreign file, or an
// envelope-version skew all degrade to "not present", never an
// exception.  Callers layer their own content versioning inside the
// payload (see expt/runner.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace scanc::util {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`.
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

/// Atomically replaces `path` with a checksummed envelope around
/// `payload`.  Returns false on I/O failure (target directory missing,
/// disk full, ...); never throws.
bool store_write(const std::string& path, std::string_view payload) noexcept;

/// Reads and verifies an envelope written by store_write.  Returns the
/// payload, or nullopt if the file is missing, truncated, corrupt, or
/// not a store file.  Never throws.
[[nodiscard]] std::optional<std::string> store_read(
    const std::string& path) noexcept;

}  // namespace scanc::util
