#include "util/trace_writer.hpp"

#include <atomic>
#include <chrono>
#include <memory>

namespace scanc::obs {
namespace {

std::chrono::steady_clock::time_point epoch() noexcept {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return t0;
}

// Global writer slot.  The enabled flag is the only thing the hot path
// reads; the shared_ptr swap is mutex-guarded and rare (process setup
// and teardown).
std::atomic<bool> g_tracing{false};
std::mutex g_writer_mutex;
std::shared_ptr<TraceWriter> g_writer;  // guarded by g_writer_mutex

std::shared_ptr<TraceWriter> current_writer() {
  const std::lock_guard<std::mutex> lock(g_writer_mutex);
  return g_writer;
}

}  // namespace

std::uint64_t now_micros() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch())
          .count());
}

std::uint32_t this_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceWriter::TraceWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) return;
  std::fputs("{\"traceEvents\":[\n", file_);
  std::fprintf(file_,
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
               "\"args\":{\"name\":\"scanc\"}}");
  first_ = false;
}

TraceWriter::~TraceWriter() { finish(); }

void TraceWriter::raw_event(const char* json) {
  if (file_ == nullptr || finished_) return;
  if (!first_) std::fputs(",\n", file_);
  first_ = false;
  std::fputs(json, file_);
  ++events_;
}

void TraceWriter::event_complete(const char* name, const char* cat,
                                 std::uint64_t ts_us, std::uint64_t dur_us,
                                 std::uint32_t tid) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,"
                "\"tid\":%u,\"ts\":%llu,\"dur\":%llu}",
                name, cat, static_cast<unsigned>(tid),
                static_cast<unsigned long long>(ts_us),
                static_cast<unsigned long long>(dur_us));
  const std::lock_guard<std::mutex> lock(mutex_);
  raw_event(buf);
}

void TraceWriter::event_instant(const char* name, const char* cat,
                                std::uint64_t ts_us, std::uint32_t tid) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"pid\":1,"
                "\"tid\":%u,\"ts\":%llu,\"s\":\"t\"}",
                name, cat, static_cast<unsigned>(tid),
                static_cast<unsigned long long>(ts_us));
  const std::lock_guard<std::mutex> lock(mutex_);
  raw_event(buf);
}

void TraceWriter::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr || finished_) return;
  std::fputs("\n]}\n", file_);
  std::fclose(file_);
  file_ = nullptr;
  finished_ = true;
}

std::uint64_t TraceWriter::events_written() const noexcept {
  return events_;
}

bool open_trace(const std::string& path) {
  auto writer = std::make_shared<TraceWriter>(path);
  if (!writer->ok()) return false;
  std::shared_ptr<TraceWriter> old;
  {
    const std::lock_guard<std::mutex> lock(g_writer_mutex);
    old = std::move(g_writer);
    g_writer = std::move(writer);
  }
  g_tracing.store(true, std::memory_order_release);
  if (old) old->finish();
  return true;
}

void close_trace() {
  g_tracing.store(false, std::memory_order_release);
  std::shared_ptr<TraceWriter> old;
  {
    const std::lock_guard<std::mutex> lock(g_writer_mutex);
    old = std::move(g_writer);
  }
  if (old) old->finish();
}

bool tracing_enabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}

void trace_event(const char* name, const char* cat, std::uint64_t ts_us,
                 std::uint64_t dur_us) {
  if (!tracing_enabled()) return;
  const std::shared_ptr<TraceWriter> w = current_writer();
  if (w) w->event_complete(name, cat, ts_us, dur_us, this_thread_id());
}

void trace_instant(const char* name, const char* cat) {
  if (!tracing_enabled()) return;
  const std::shared_ptr<TraceWriter> w = current_writer();
  if (w) w->event_instant(name, cat, now_micros(), this_thread_id());
}

}  // namespace scanc::obs
