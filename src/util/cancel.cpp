#include "util/cancel.hpp"

#include <csignal>
#include <limits>

namespace scanc::util {

double Deadline::remaining_seconds() const noexcept {
  if (!when_.has_value()) {
    return std::numeric_limits<double>::infinity();
  }
  const double left =
      std::chrono::duration<double>(*when_ - Clock::now()).count();
  return left > 0.0 ? left : 0.0;
}

CancelToken CancelToken::make(Deadline deadline) {
  auto s = std::make_shared<State>();
  s->deadline = deadline;
  return CancelToken(std::move(s));
}

void CancelToken::request_stop() const noexcept {
  if (state_ != nullptr) {
    state_->stop.store(true, std::memory_order_relaxed);
  }
}

bool CancelToken::stop_requested() const noexcept {
  State* s = state_.get();
  if (s == nullptr) return false;
  if (s->stop.load(std::memory_order_relaxed)) return true;
  if (s->deadline.expired()) {
    // Latch expiry so later polls skip the clock read.
    s->stop.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

Deadline CancelToken::deadline() const noexcept {
  return state_ != nullptr ? state_->deadline : Deadline{};
}

namespace {

/// The flag the signal handler raises.  A raw pointer: the owning
/// ScopedSignalCancel keeps the State alive for the handler's lifetime.
std::atomic<std::atomic<bool>*> g_signal_flag{nullptr};

void signal_cancel_handler(int /*signum*/) {
  // Only async-signal-safe operations: one relaxed atomic store.
  std::atomic<bool>* flag = g_signal_flag.load(std::memory_order_relaxed);
  if (flag != nullptr) flag->store(true, std::memory_order_relaxed);
}

}  // namespace

ScopedSignalCancel::ScopedSignalCancel(const CancelToken& token)
    : state_(token.state_),
      old_int_(new struct sigaction),
      old_term_(new struct sigaction) {
  g_signal_flag.store(&state_->stop, std::memory_order_relaxed);
  struct sigaction sa = {};
  sa.sa_handler = signal_cancel_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking syscalls too
  sigaction(SIGINT, &sa, static_cast<struct sigaction*>(old_int_));
  sigaction(SIGTERM, &sa, static_cast<struct sigaction*>(old_term_));
}

ScopedSignalCancel::~ScopedSignalCancel() {
  sigaction(SIGINT, static_cast<struct sigaction*>(old_int_), nullptr);
  sigaction(SIGTERM, static_cast<struct sigaction*>(old_term_), nullptr);
  g_signal_flag.store(nullptr, std::memory_order_relaxed);
  delete static_cast<struct sigaction*>(old_int_);
  delete static_cast<struct sigaction*>(old_term_);
}

}  // namespace scanc::util
