// Chrome trace-event writer (chrome://tracing / Perfetto "JSON trace").
//
// Emits the JSON Array Format with complete ("ph":"X") duration events:
//   {"traceEvents":[
//     {"name":"process_name","ph":"M","pid":1,"args":{"name":"scanc"}},
//     {"name":"phase1+2","cat":"phase","ph":"X","pid":1,"tid":0,
//      "ts":12.0,"dur":3400.5},
//     ...]}
// Timestamps are microseconds on a process-wide steady clock; nesting is
// reconstructed by the viewer from [ts, ts+dur] containment per tid, so
// RAII spans (obs::Span) produce correctly nested tracks with no
// begin/end pairing on our side.
//
// One global writer is installed via open_trace(); Span checks a relaxed
// atomic first, so with no writer installed a span costs one load and a
// branch and performs no allocation.  The writer itself serializes
// appends with a mutex — events are emitted at span *end*, never inside
// simulation frame loops.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace scanc::obs {

class TraceWriter {
 public:
  /// Opens `path` for writing and emits the trace header.  ok() reports
  /// whether the file could be created.
  explicit TraceWriter(const std::string& path);

  /// Finishes the trace (idempotent) and closes the file.
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  [[nodiscard]] bool ok() const noexcept { return file_ != nullptr; }

  /// Appends one complete duration event.  `name` and `cat` must be
  /// JSON-safe (the instrumentation uses string literals only).
  void event_complete(const char* name, const char* cat,
                      std::uint64_t ts_us, std::uint64_t dur_us,
                      std::uint32_t tid);

  /// Appends one instant event (a vertical marker line).
  void event_instant(const char* name, const char* cat, std::uint64_t ts_us,
                     std::uint32_t tid);

  /// Writes the closing bracket and flushes (idempotent; also run by the
  /// destructor).
  void finish();

  /// Events written so far (exposed for tests).
  [[nodiscard]] std::uint64_t events_written() const noexcept;

 private:
  void raw_event(const char* prefix_json);

  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  bool first_ = true;
  bool finished_ = false;
  std::uint64_t events_ = 0;
};

/// Microseconds since the process-wide telemetry epoch (steady clock,
/// initialised on first use).
[[nodiscard]] std::uint64_t now_micros() noexcept;

/// Small dense id of the calling thread (0, 1, 2, ... in first-use
/// order), cached thread-locally.
[[nodiscard]] std::uint32_t this_thread_id() noexcept;

/// Installs a global trace writer on `path`.  Returns false (and leaves
/// tracing off) when the file cannot be created.  Replacing an existing
/// writer finishes it first.
bool open_trace(const std::string& path);

/// Finishes and removes the global writer (no-op when none installed).
/// Call after all spans have ended.
void close_trace();

/// True while a global writer is installed — the fast-path check spans
/// use (one relaxed load).
[[nodiscard]] bool tracing_enabled() noexcept;

/// Emits one complete event through the global writer, if installed.
void trace_event(const char* name, const char* cat, std::uint64_t ts_us,
                 std::uint64_t dur_us);

/// Emits one instant event through the global writer, if installed.
void trace_instant(const char* name, const char* cat);

}  // namespace scanc::obs
