#include "util/event_bus.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "util/trace_writer.hpp"

namespace scanc::obs {
namespace {

// Caps keeping the bus bounded no matter how hostile the workload is:
// at most this many distinct jobs keep sequence/history state (evicting
// the least-recently-published job), and a subscription queue never
// exceeds its requested capacity.
constexpr std::size_t kMaxTrackedJobs = 1024;

const std::string kEmptyJob;
thread_local const std::string* t_current_job = nullptr;

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::PhaseBegin: return "phase_begin";
    case EventKind::PhaseEnd: return "phase_end";
    case EventKind::Round: return "round";
    case EventKind::Counters: return "counters";
    case EventKind::JobState: return "job_state";
    case EventKind::kCount: break;
  }
  return "unknown";
}

EventKind event_kind_from(const std::string& name) noexcept {
  for (int i = 0; i < static_cast<int>(EventKind::kCount); ++i) {
    auto k = static_cast<EventKind>(i);
    if (name == to_string(k)) return k;
  }
  return EventKind::kCount;
}

std::string event_json(const Event& e) {
  std::string out;
  out.reserve(96 + e.job.size() + e.phase.size() + e.note.size());
  out += "{\"kind\":";
  append_json_string(out, to_string(e.kind));
  out += ",\"job\":";
  append_json_string(out, e.job);
  out += ",\"phase\":";
  append_json_string(out, e.phase);
  out += ",\"seq\":" + std::to_string(e.seq);
  out += ",\"t_us\":" + std::to_string(e.t_us);
  out += ",\"faults\":" + std::to_string(e.faults);
  out += ",\"value\":" + std::to_string(e.value);
  out += ",\"note\":";
  append_json_string(out, e.note);
  out += "}";
  return out;
}

// ---------------------------------------------------------------------
// Subscription state.

struct EventSubscription::State {
  std::mutex mutex;
  std::condition_variable cv;
  std::string filter;          // "" = every job
  std::size_t capacity = 256;
  std::deque<Event> queue;
  std::uint64_t dropped_pending = 0;  // since the last poll()
  bool detached = false;              // bus dropped its reference
};

std::size_t EventSubscription::poll(std::vector<Event>& out,
                                    double timeout_seconds,
                                    std::uint64_t* dropped) {
  auto& st = *state_;
  std::unique_lock<std::mutex> lock(st.mutex);
  if (st.queue.empty() && st.dropped_pending == 0 && timeout_seconds > 0) {
    st.cv.wait_for(
        lock, std::chrono::duration<double>(timeout_seconds), [&st] {
          return !st.queue.empty() || st.dropped_pending != 0 || st.detached;
        });
  }
  if (dropped != nullptr) *dropped = st.dropped_pending;
  st.dropped_pending = 0;
  std::size_t n = st.queue.size();
  for (auto& ev : st.queue) out.push_back(std::move(ev));
  st.queue.clear();
  return n;
}

// ---------------------------------------------------------------------
// The bus.

namespace {

struct JobRecord {
  std::uint64_t next_seq = 0;
  std::uint64_t last_touch = 0;       // bus-wide publish tick, for eviction
  std::uint64_t history_dropped = 0;
  std::deque<Event> history;
};

struct EventLog {
  std::FILE* file = nullptr;
  std::string path;
  std::uint64_t max_bytes = 0;
  std::uint64_t written = 0;
};

struct Bus {
  std::mutex mutex;
  std::vector<std::shared_ptr<EventSubscription::State>> subs;
  std::unordered_map<std::string, JobRecord> jobs;
  std::size_t history_capacity = 0;
  std::uint64_t tick = 0;
  EventLog log;

  // Recomputes the fast-path enabled bit from the attached sinks.  Call
  // with `mutex` held.
  void refresh_sinks() {
    std::uint32_t n = static_cast<std::uint32_t>(subs.size());
    if (history_capacity != 0) ++n;
    if (log.file != nullptr) ++n;
    events_internal::g_sinks.store(n, std::memory_order_relaxed);
  }

  JobRecord& touch(const std::string& job) {
    auto it = jobs.find(job);
    if (it == jobs.end()) {
      if (jobs.size() >= kMaxTrackedJobs) {
        auto victim = jobs.begin();
        for (auto jt = jobs.begin(); jt != jobs.end(); ++jt) {
          if (jt->second.last_touch < victim->second.last_touch) victim = jt;
        }
        jobs.erase(victim);
      }
      it = jobs.emplace(job, JobRecord{}).first;
    }
    it->second.last_touch = ++tick;
    return it->second;
  }

  void log_line(const Event& e) {
    if (log.file == nullptr) return;
    std::string line = event_json(e);
    line.push_back('\n');
    if (log.max_bytes != 0 && log.written + line.size() > log.max_bytes &&
        log.written > 0) {
      std::fclose(log.file);
      std::string rotated = log.path + ".1";
      std::remove(rotated.c_str());
      std::rename(log.path.c_str(), rotated.c_str());
      log.file = std::fopen(log.path.c_str(), "w");
      log.written = 0;
      if (log.file == nullptr) {
        refresh_sinks();
        return;
      }
    }
    std::fwrite(line.data(), 1, line.size(), log.file);
    log.written += line.size();
  }

  void publish(const std::string& job, EventKind kind, const char* phase,
               std::uint64_t faults, std::uint64_t value, const char* note) {
    Event e;
    e.kind = kind;
    e.job = job;
    e.phase = phase != nullptr ? phase : "";
    e.note = note != nullptr ? note : "";
    e.faults = faults;
    e.value = value;
    e.t_us = now_micros();

    std::vector<std::shared_ptr<EventSubscription::State>> targets;
    {
      std::lock_guard<std::mutex> lock(mutex);
      JobRecord& rec = touch(job);
      e.seq = ++rec.next_seq;
      if (history_capacity != 0) {
        if (rec.history.size() >= history_capacity) {
          rec.history.pop_front();
          ++rec.history_dropped;
        }
        rec.history.push_back(e);
      }
      log_line(e);
      for (auto& sub : subs) {
        if (sub->filter.empty() || sub->filter == job) targets.push_back(sub);
      }
    }
    // Queue into each matching subscription outside the bus lock so one
    // subscriber's mutex never serializes unrelated publishers.
    for (auto& sub : targets) {
      {
        std::lock_guard<std::mutex> lock(sub->mutex);
        if (sub->queue.size() >= sub->capacity) {
          ++sub->dropped_pending;
        } else {
          sub->queue.push_back(e);
        }
      }
      sub->cv.notify_one();
    }
  }
};

Bus& bus() {
  static Bus* b = new Bus;  // leaked: publishers may outlive main()'s exit
  return *b;
}

}  // namespace

namespace events_internal {

std::atomic<std::uint32_t> g_sinks{0};

void publish_slow(EventKind kind, const char* phase, std::uint64_t faults,
                  std::uint64_t value, const char* note) noexcept {
  try {
    const std::string& job =
        t_current_job != nullptr ? *t_current_job : kEmptyJob;
    bus().publish(job, kind, phase, faults, value, note);
  } catch (...) {
    // Telemetry must never take down the workload.
  }
}

void publish_slow_job(const std::string& job, EventKind kind,
                      const char* phase, std::uint64_t faults,
                      std::uint64_t value, const char* note) noexcept {
  try {
    bus().publish(job, kind, phase, faults, value, note);
  } catch (...) {
  }
}

}  // namespace events_internal

EventJobScope::EventJobScope(std::string job_id) noexcept
    : job_(std::move(job_id)), previous_(t_current_job) {
  t_current_job = &job_;
}

EventJobScope::~EventJobScope() { t_current_job = previous_; }

const std::string& current_event_job() noexcept {
  return t_current_job != nullptr ? *t_current_job : kEmptyJob;
}

EventSubscription::~EventSubscription() {
  if (state_ == nullptr) return;
  Bus& b = bus();
  {
    std::lock_guard<std::mutex> lock(b.mutex);
    for (auto it = b.subs.begin(); it != b.subs.end(); ++it) {
      if (it->get() == state_.get()) {
        b.subs.erase(it);
        break;
      }
    }
    b.refresh_sinks();
  }
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->detached = true;
  }
  state_->cv.notify_all();
}

std::shared_ptr<EventSubscription> subscribe(std::string job_filter,
                                             std::size_t capacity) {
  auto sub = std::shared_ptr<EventSubscription>(new EventSubscription);
  sub->state_ = std::make_shared<EventSubscription::State>();
  sub->state_->filter = std::move(job_filter);
  sub->state_->capacity = capacity != 0 ? capacity : 1;
  Bus& b = bus();
  std::lock_guard<std::mutex> lock(b.mutex);
  b.subs.push_back(sub->state_);
  b.refresh_sinks();
  return sub;
}

void set_event_history(std::size_t capacity_per_job) {
  Bus& b = bus();
  std::lock_guard<std::mutex> lock(b.mutex);
  b.history_capacity = capacity_per_job;
  if (capacity_per_job == 0) {
    for (auto& [id, rec] : b.jobs) {
      rec.history.clear();
      rec.history_dropped = 0;
    }
  }
  b.refresh_sinks();
}

EventHistory event_history(const std::string& job) {
  EventHistory out;
  Bus& b = bus();
  std::lock_guard<std::mutex> lock(b.mutex);
  auto it = b.jobs.find(job);
  if (it == b.jobs.end()) return out;
  out.events.assign(it->second.history.begin(), it->second.history.end());
  out.dropped = it->second.history_dropped;
  return out;
}

void seed_event_history(const std::string& job, std::vector<Event> events,
                        std::uint64_t dropped) {
  Bus& b = bus();
  std::lock_guard<std::mutex> lock(b.mutex);
  if (b.history_capacity == 0) return;
  JobRecord& rec = b.touch(job);
  rec.history.clear();
  rec.history_dropped = dropped;
  std::uint64_t max_seq = rec.next_seq;
  for (auto& e : events) {
    if (e.seq > max_seq) max_seq = e.seq;
    if (rec.history.size() >= b.history_capacity) {
      rec.history.pop_front();
      ++rec.history_dropped;
    }
    rec.history.push_back(std::move(e));
  }
  rec.next_seq = max_seq;
}

bool open_event_log(const std::string& path, std::uint64_t max_bytes) {
  Bus& b = bus();
  std::lock_guard<std::mutex> lock(b.mutex);
  if (b.log.file != nullptr) {
    std::fclose(b.log.file);
    b.log.file = nullptr;
  }
  b.log.file = std::fopen(path.c_str(), "w");
  b.log.path = path;
  b.log.max_bytes = max_bytes;
  b.log.written = 0;
  b.refresh_sinks();
  return b.log.file != nullptr;
}

void close_event_log() {
  Bus& b = bus();
  std::lock_guard<std::mutex> lock(b.mutex);
  if (b.log.file != nullptr) {
    std::fflush(b.log.file);
    std::fclose(b.log.file);
    b.log.file = nullptr;
  }
  b.refresh_sinks();
}

void shutdown_sinks() {
  close_event_log();
  close_trace();
}

void reset_events() {
  Bus& b = bus();
  std::lock_guard<std::mutex> lock(b.mutex);
  if (b.log.file != nullptr) {
    std::fclose(b.log.file);
    b.log.file = nullptr;
  }
  b.jobs.clear();
  b.tick = 0;
  for (auto& sub : b.subs) {
    std::lock_guard<std::mutex> sl(sub->mutex);
    sub->queue.clear();
    sub->dropped_pending = 0;
  }
  b.refresh_sinks();
}

}  // namespace scanc::obs
