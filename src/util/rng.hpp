// Deterministic pseudo-random number generation (xoshiro256** seeded via
// splitmix64).  Every stochastic component in the library takes an
// explicit seed so experiments are reproducible bit-for-bit across runs
// and platforms; std::mt19937 distributions are avoided because their
// results are not portable across standard library implementations.
#pragma once

#include <cstdint>

namespace scanc::util {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic 64-bit generator.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  /// Next 64 uniformly random bits.
  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift method.
  /// `bound` must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Rejection-free approximation is fine for simulation workloads; the
    // modulo bias of multiply-high is < 2^-64 per draw.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli draw with probability numer/denom.
  constexpr bool chance(std::uint64_t numer, std::uint64_t denom) noexcept {
    return below(denom) < numer;
  }

  /// Random bit.
  constexpr bool coin() noexcept { return (next() >> 63) != 0; }

  /// Uniform double in [0, 1).
  constexpr double unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace scanc::util
