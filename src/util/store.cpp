#include "util/store.hpp"

#include <array>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace scanc::util {
namespace {

constexpr std::string_view kMagic = "scanc-store";
constexpr int kEnvelopeVersion = 1;

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

template <typename T>
std::optional<T> parse_number(std::string_view s, int base = 10) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value, base);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = kCrcTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

namespace {

/// Writes all of `data` to `fd`, retrying short writes and EINTR.
bool write_all(int fd, const char* data, std::size_t size) noexcept {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// fsyncs the directory containing `path`, so the rename that just
/// landed there is durable.  Best-effort: some filesystems reject
/// directory fsync; only a real I/O error fails the commit.
bool sync_parent_dir(const std::string& path) noexcept {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0 || errno == EINVAL || errno == ENOTSUP;
  ::close(fd);
  return ok;
}

}  // namespace

// Crash-atomicity contract: after store_write returns true, a reader —
// in this process, another process, or one started after a crash *or
// power loss* — sees either the complete new envelope or whatever was
// at `path` before; never a torn mix, and never nothing where the
// journal says a blob was committed.  The sequence that guarantees it:
//   1. write the envelope to a unique temp file in the same directory,
//   2. fsync the temp file (data hits stable storage before the rename
//      can make it visible),
//   3. rename(2) onto `path` (atomic replacement within a filesystem),
//   4. fsync the parent directory (the rename's directory entry itself
//      is durable — without this, power loss after rename can resurface
//      the old file or an empty slot even though the caller was told
//      the write committed).
// A false return means nothing is promised about `path` beyond "the old
// content, if any, is still intact".
bool store_write(const std::string& path, std::string_view payload) noexcept {
  try {
    char header[64];
    std::snprintf(header, sizeof(header), "%s %d %08x %zu\n", kMagic.data(),
                  kEnvelopeVersion, crc32(payload), payload.size());
    // Unique-per-process temp name in the same directory, so rename(2)
    // is atomic and concurrent writers never share a temp file.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return false;
    const bool wrote = write_all(fd, header, std::strlen(header)) &&
                       write_all(fd, payload.data(), payload.size()) &&
                       ::fsync(fd) == 0;
    ::close(fd);
    if (!wrote) {
      std::remove(tmp.c_str());
      return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return false;
    }
    return sync_parent_dir(path);
  } catch (...) {
    return false;
  }
}

std::optional<std::string> store_read(const std::string& path) noexcept {
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) return std::nullopt;
    const std::string file = buf.str();

    const std::size_t eol = file.find('\n');
    if (eol == std::string::npos) return std::nullopt;
    const std::string_view header(file.data(), eol);

    // "scanc-store <version> <crc-hex8> <size>"
    std::array<std::string_view, 4> fields;
    std::size_t n = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= header.size(); ++i) {
      if (i == header.size() || header[i] == ' ') {
        if (i > start) {
          if (n == fields.size()) return std::nullopt;
          fields[n++] = header.substr(start, i - start);
        }
        start = i + 1;
      }
    }
    if (n != fields.size() || fields[0] != kMagic) return std::nullopt;
    const auto version = parse_number<int>(fields[1]);
    if (!version || *version != kEnvelopeVersion) return std::nullopt;
    const auto crc = parse_number<std::uint32_t>(fields[2], 16);
    const auto size = parse_number<std::size_t>(fields[3]);
    if (!crc || !size) return std::nullopt;

    const std::string_view payload(file.data() + eol + 1,
                                   file.size() - eol - 1);
    if (payload.size() != *size) return std::nullopt;  // truncated/padded
    if (crc32(payload) != *crc) return std::nullopt;   // corrupt
    return std::string(payload);
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace scanc::util
