// Cooperative cancellation: deadlines, cancel tokens, signal hookup.
//
// A CancelToken is a copyable handle to shared cancellation state.  It
// is raised explicitly (request_stop — thread- and async-signal-safe)
// or implicitly by an attached Deadline; once raised it stays raised.
// Long-running computations poll stop_requested() at natural
// boundaries (simulation frames, fault groups, pipeline phases) and
// return their best-so-far result instead of discarding work — see
// docs/robustness.md for the full list of cancellation points.
//
// A default-constructed token is *inert*: stop_requested() is false
// forever and request_stop() is a no-op, so APIs can take a CancelToken
// by value with zero cost for callers that never cancel.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>

namespace scanc::util {

/// A point in time after which work should stop.  Default-constructed
/// deadlines never expire.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  ///< never expires

  /// Expires `seconds` from now (values <= 0 are already expired).
  [[nodiscard]] static Deadline after(double seconds) {
    Deadline d;
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
    return d;
  }

  [[nodiscard]] static Deadline at(Clock::time_point when) {
    Deadline d;
    d.when_ = when;
    return d;
  }

  /// True if this deadline can never expire.
  [[nodiscard]] bool never() const noexcept { return !when_.has_value(); }

  [[nodiscard]] bool expired() const noexcept {
    return when_.has_value() && Clock::now() >= *when_;
  }

  /// Seconds until expiry; +infinity for a never-expiring deadline,
  /// clamped at 0 once expired.
  [[nodiscard]] double remaining_seconds() const noexcept;

 private:
  std::optional<Clock::time_point> when_;
};

/// Copyable handle to shared cancellation state (flag + optional
/// deadline).  All copies observe the same raise.  Raising is sticky:
/// there is no reset.  Deadline expiry is latched into the flag on the
/// first poll that observes it, so subsequent polls are a single
/// relaxed atomic load.
class CancelToken {
 public:
  /// Inert token: never cancels, request_stop is a no-op.
  CancelToken() = default;

  /// A fresh cancellable token, optionally bound to a deadline.
  [[nodiscard]] static CancelToken make(Deadline deadline = {});

  /// False for a default-constructed (inert) token.
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Raises the token.  Thread-safe and async-signal-safe (a single
  /// relaxed atomic store).
  void request_stop() const noexcept;

  /// True once the token has been raised or its deadline has expired.
  [[nodiscard]] bool stop_requested() const noexcept;

  /// The deadline this token was created with (never-expiring if none).
  [[nodiscard]] Deadline deadline() const noexcept;

 private:
  friend class ScopedSignalCancel;

  struct State {
    std::atomic<bool> stop{false};
    Deadline deadline;
  };

  explicit CancelToken(std::shared_ptr<State> s) : state_(std::move(s)) {}

  std::shared_ptr<State> state_;
};

/// RAII SIGINT/SIGTERM hookup: while alive, either signal raises the
/// token (async-signal-safely) so a run can shut down gracefully and
/// persist its checkpoints; the previous handlers are restored on
/// destruction.  At most one instance may be alive at a time.  The
/// token must be valid().
class ScopedSignalCancel {
 public:
  explicit ScopedSignalCancel(const CancelToken& token);
  ~ScopedSignalCancel();

  ScopedSignalCancel(const ScopedSignalCancel&) = delete;
  ScopedSignalCancel& operator=(const ScopedSignalCancel&) = delete;

 private:
  std::shared_ptr<CancelToken::State> state_;  // keeps the flag alive
  void* old_int_;   // saved struct sigaction, opaque here
  void* old_term_;
};

}  // namespace scanc::util
