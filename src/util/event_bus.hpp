// scanc::obs event bus — live structured events for service introspection.
//
// Complements the counters/spans in util/telemetry.hpp: where a counter
// answers "how much work happened", an event answers "what is happening
// right now" — phase begin/end, per-round coverage deltas, periodic
// counter snapshots, and job state transitions, each stamped with a job
// id, a phase path, a per-job gap-free sequence number, and a
// steady-clock offset on the same epoch as the Chrome trace spans
// (util/trace_writer.hpp now_micros), so a streamed event correlates
// directly with a trace span.
//
// Design constraints (docs/observability.md "Live events"):
//
//   Zero cost disabled   publish_event() is one relaxed load and a
//                        branch when no sink is attached — no lock, no
//                        allocation (pinned by tests/telemetry_test.cpp
//                        alongside the span/counter zero-alloc check).
//
//   Bounded everywhere   each subscriber owns a bounded queue (overflow
//                        drops the newest event and counts it — the
//                        "dropped" marker the watch stream surfaces);
//                        per-job history rings are bounded per job and
//                        in job count; the JSONL log sink rotates at a
//                        size cap.  A slow consumer can never stall a
//                        publisher or grow the process.
//
//   Sinks, not wiring    three independent sinks share the publish
//                        path: live subscriptions (the svc `watch`
//                        verb), per-job replay rings (the `events`
//                        verb and the drain snapshot), and the JSONL
//                        event log (--event-log).  Any one of them
//                        flips the enabled bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace scanc::obs {

// ---------------------------------------------------------------------
// Events.

enum class EventKind : std::uint8_t {
  PhaseBegin,  ///< a pipeline phase / step started (phase = its path)
  PhaseEnd,    ///< ...finished; faults = detections, value = millis
  Round,       ///< one Phase 1+2 round: faults = detected, value = round
  Counters,    ///< periodic execution snapshot: value = groups this call
  JobState,    ///< service job transition; note = new state name
  kCount
};

/// Stable snake_case name ("phase_begin", ...), the JSON "kind" field.
[[nodiscard]] const char* to_string(EventKind k) noexcept;

/// Parses a kind name; returns EventKind::kCount for an unknown name.
[[nodiscard]] EventKind event_kind_from(const std::string& name) noexcept;

struct Event {
  EventKind kind = EventKind::Counters;
  std::string job;    ///< job id; empty = process-global stream
  std::string phase;  ///< phase path ("phase1+2", "phase1/step1", ...)
  std::string note;   ///< short free text (job state name, error kind)
  std::uint64_t seq = 0;     ///< per-job monotonic, 1-based, gap-free
  std::uint64_t t_us = 0;    ///< microseconds on the trace-span epoch
  std::uint64_t faults = 0;  ///< faults detected (coverage payload)
  std::uint64_t value = 0;   ///< kind-specific payload (round, groups, ms)
};

/// One compact JSON object (the JSONL event-log line / wire payload).
/// Schema: {"kind","job","phase","seq","t_us","faults","value","note"}.
[[nodiscard]] std::string event_json(const Event& e);

// ---------------------------------------------------------------------
// Publishing.

namespace events_internal {
extern std::atomic<std::uint32_t> g_sinks;
void publish_slow(EventKind kind, const char* phase, std::uint64_t faults,
                  std::uint64_t value, const char* note) noexcept;
void publish_slow_job(const std::string& job, EventKind kind,
                      const char* phase, std::uint64_t faults,
                      std::uint64_t value, const char* note) noexcept;
}  // namespace events_internal

/// True while any sink (subscriber, history, log) is attached.  One
/// relaxed load — the publish fast path.
[[nodiscard]] inline bool events_enabled() noexcept {
  return events_internal::g_sinks.load(std::memory_order_relaxed) != 0;
}

/// Publishes one event stamped with the calling thread's job scope (see
/// EventJobScope).  `phase` and `note` must be literals or outlive the
/// call.  With no sink attached this is one relaxed load and performs
/// no allocation; it never throws either way.
inline void publish_event(EventKind kind, const char* phase,
                          std::uint64_t faults = 0, std::uint64_t value = 0,
                          const char* note = nullptr) noexcept {
  if (!events_enabled()) return;
  events_internal::publish_slow(kind, phase, faults, value, note);
}

/// publish_event with an explicit job id (the svc layer's state
/// transitions, which run outside the executing thread's scope).
inline void publish_job_event(const std::string& job, EventKind kind,
                              const char* phase, std::uint64_t faults = 0,
                              std::uint64_t value = 0,
                              const char* note = nullptr) noexcept {
  if (!events_enabled()) return;
  events_internal::publish_slow_job(job, kind, phase, faults, value, note);
}

/// RAII thread-local job scope: publish_event calls from this thread are
/// stamped with `job_id` while the scope is live (nesting-safe).  The
/// service installs one around each job attempt so pipeline events carry
/// the owning job's id.
class EventJobScope {
 public:
  explicit EventJobScope(std::string job_id) noexcept;
  ~EventJobScope();
  EventJobScope(const EventJobScope&) = delete;
  EventJobScope& operator=(const EventJobScope&) = delete;

 private:
  std::string job_;
  const std::string* previous_;
};

/// The calling thread's current job scope id ("" outside any scope).
[[nodiscard]] const std::string& current_event_job() noexcept;

// ---------------------------------------------------------------------
// Live subscriptions (the svc `watch` stream source).

class EventSubscription {
 public:
  ~EventSubscription();
  EventSubscription(const EventSubscription&) = delete;
  EventSubscription& operator=(const EventSubscription&) = delete;

  /// Appends queued events to `out` (up to the queue contents), blocking
  /// up to `timeout_seconds` while the queue is empty.  Returns the
  /// number appended.  `*dropped` (optional) receives the events lost to
  /// queue overflow since the previous poll — the caller's cue to emit a
  /// "dropped" marker before the post-gap events.
  std::size_t poll(std::vector<Event>& out, double timeout_seconds,
                   std::uint64_t* dropped = nullptr);

  struct State;  ///< bus-internal queue state (defined in event_bus.cpp)

 private:
  friend std::shared_ptr<EventSubscription> subscribe(std::string,
                                                      std::size_t);
  EventSubscription() = default;
  std::shared_ptr<State> state_;
};

/// Subscribes to published events.  `job_filter` empty matches every
/// job; otherwise only events whose job id equals the filter are
/// queued.  The queue holds at most `capacity` events; overflow drops
/// the incoming event and counts it (slow-consumer shedding — the
/// publisher never blocks).  Destroying the returned handle
/// unsubscribes.
[[nodiscard]] std::shared_ptr<EventSubscription> subscribe(
    std::string job_filter, std::size_t capacity = 256);

// ---------------------------------------------------------------------
// Per-job history rings (the svc `events` replay source).

struct EventHistory {
  std::vector<Event> events;   ///< oldest-first retained ring contents
  std::uint64_t dropped = 0;   ///< events the bounded ring discarded
};

/// Enables per-job history rings retaining the last `capacity_per_job`
/// events per job (0 disables and clears).  Counts as a sink.
void set_event_history(std::size_t capacity_per_job);

/// The retained ring for `job` (empty history for an unknown job).
[[nodiscard]] EventHistory event_history(const std::string& job);

/// Re-seeds a job's ring (and its next sequence number) from a persisted
/// snapshot, so a resumed job's stream continues gap-free after the
/// already-replayed prefix.  No-op when history is disabled.
void seed_event_history(const std::string& job, std::vector<Event> events,
                        std::uint64_t dropped);

// ---------------------------------------------------------------------
// JSONL event-log sink (--event-log).

/// Opens `path` as a JSONL event log (one event_json line per event).
/// When the file exceeds `max_bytes` it is rotated once to `path`+".1"
/// (replacing any previous rotation) and restarted, so the sink holds at
/// most ~2x max_bytes on disk.  Returns false (sink off) when the file
/// cannot be created.  Counts as a sink.
bool open_event_log(const std::string& path,
                    std::uint64_t max_bytes = 8u << 20);

/// Flushes and closes the event log (idempotent, no-op when closed).
void close_event_log();

/// Shutdown ordering for every obs sink: flush+close the event log
/// FIRST, then finish the Chrome trace.  Drain paths publish their final
/// phase-end events before calling this, so the log must still be open
/// when the trace is sealed — closing the trace first loses nothing, but
/// sealing the log last guarantees those final events hit disk
/// (tests/resilience_test.cpp pins the ordering).
void shutdown_sinks();

/// Test-only: drops every subscription's pending queue, clears all
/// history rings and sequence state, and closes the log.  Callers must
/// be quiescent.
void reset_events();

}  // namespace scanc::obs
