// Effect-cause fault diagnosis.
//
// Given a test program (a scan test set) and the responses observed on a
// failing device, rank the single stuck-at fault candidates that explain
// the behaviour.  A candidate is *consistent* with a test when its
// predicted response matches the observation at every binary position
// (X positions are ignored on both sides); the classic single-fault
// diagnosis keeps the faults consistent with every test and ranks them
// by how many failing tests they explain.
//
// This module closes the loop on the compaction flow: the compacted test
// sets this library produces remain diagnosable, and the example
// (examples/diagnosis_demo.cpp) demonstrates locating an injected defect
// with the compacted at-speed test set.
#pragma once

#include <cstddef>
#include <vector>

#include "fault/fault_sim.hpp"
#include "tcomp/response.hpp"
#include "tcomp/scan_test.hpp"

namespace scanc::diag {

/// Observed behaviour of the device under test, one entry per test in
/// the set (same shape as the expected responses).
using ObservedResponses = std::vector<tcomp::TestResponse>;

/// Simulates the device behaviour under fault `defect` for every test —
/// the ground-truth generator for experiments and tests.
[[nodiscard]] ObservedResponses simulate_defect(
    const netlist::Circuit& circuit, const fault::FaultList& faults,
    fault::FaultClassId defect, const tcomp::ScanTestSet& set);

/// One diagnosis candidate.
struct Candidate {
  fault::FaultClassId fault = 0;
  std::size_t explained_failures = 0;  ///< failing tests it predicts exactly
};

struct DiagnosisResult {
  /// Candidates consistent with every observed response, ranked by the
  /// number of failing tests they explain (descending), then by class id.
  std::vector<Candidate> candidates;
  /// Number of tests whose observation differs from the fault-free
  /// expectation (0 = the device passes; diagnosis is vacuous).
  std::size_t failing_tests = 0;
};

/// Runs single-fault effect-cause diagnosis.
[[nodiscard]] DiagnosisResult diagnose(fault::FaultSimulator& fsim,
                                       const tcomp::ScanTestSet& set,
                                       const ObservedResponses& observed);

}  // namespace scanc::diag
