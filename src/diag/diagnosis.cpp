#include "diag/diagnosis.hpp"

#include <algorithm>

#include "sim/injection.hpp"
#include "sim/seq_sim.hpp"

namespace scanc::diag {

using fault::FaultClassId;
using fault::FaultSet;
using fault::FaultSimulator;

ObservedResponses simulate_defect(const netlist::Circuit& circuit,
                                  const fault::FaultList& faults,
                                  FaultClassId defect,
                                  const tcomp::ScanTestSet& set) {
  const fault::Fault& f = faults.representative(defect);
  sim::PackedSeqSim sim(circuit);
  sim::InjectionMap inj(circuit.num_nodes());
  inj.add(f.node, f.pin, f.value, 1ULL << 1);  // slot 1 = the defect

  ObservedResponses out;
  out.reserve(set.size());
  for (const tcomp::ScanTest& t : set.tests) {
    sim.reset(&inj);
    sim.load_state(t.scan_in, &inj);
    tcomp::TestResponse r;
    r.outputs.reserve(t.seq.length());
    for (const sim::Vector3& pi : t.seq.frames) {
      sim.apply_frame(pi, &inj);
      sim::Vector3 po(circuit.num_outputs());
      for (std::size_t i = 0; i < circuit.primary_outputs().size(); ++i) {
        po[i] = sim::slot(sim.value(circuit.primary_outputs()[i]), 1);
      }
      r.outputs.push_back(std::move(po));
      sim.latch(&inj);
    }
    r.scan_out.resize(circuit.num_flip_flops());
    for (std::size_t i = 0; i < circuit.num_flip_flops(); ++i) {
      r.scan_out[i] = sim::slot(sim.captured(i), 1);
    }
    out.push_back(std::move(r));
  }
  return out;
}

DiagnosisResult diagnose(FaultSimulator& fsim,
                         const tcomp::ScanTestSet& set,
                         const ObservedResponses& observed) {
  DiagnosisResult result;
  const netlist::Circuit& circuit = fsim.circuit();

  // Which tests fail (observation differs from the fault-free
  // expectation at some binary position)?
  const auto differs = [](const sim::Vector3& a, const sim::Vector3& b) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (sim::is_binary(a[i]) && sim::is_binary(b[i]) && a[i] != b[i]) {
        return true;
      }
    }
    return false;
  };
  std::vector<char> failing(set.size(), 0);
  for (std::size_t t = 0; t < set.size(); ++t) {
    const tcomp::TestResponse expect =
        tcomp::expected_response(circuit, set.tests[t]);
    bool fail = differs(expect.scan_out, observed[t].scan_out);
    for (std::size_t u = 0; u < expect.outputs.size() && !fail; ++u) {
      fail = differs(expect.outputs[u], observed[t].outputs[u]);
    }
    failing[t] = fail ? 1 : 0;
    if (fail) ++result.failing_tests;
  }

  // Intersect the consistent-fault sets across all tests; restricting
  // each pass to the surviving candidates keeps the work shrinking.
  FaultSet candidates = fsim.all_faults();
  for (std::size_t t = 0; t < set.size() && !candidates.none(); ++t) {
    candidates = fsim.consistent_faults(
        set.tests[t].scan_in, set.tests[t].seq, observed[t].outputs,
        observed[t].scan_out, candidates);
  }

  // Rank: how many failing tests does each surviving candidate predict
  // (i.e. the fault is detected by that test)?
  std::vector<std::size_t> explained(fsim.num_classes(), 0);
  if (!candidates.none()) {
    // One pattern-parallel batch over the failing tests: the candidate
    // set is fixed here, so the batch is bit-identical to per-test runs.
    std::vector<fault::FaultSimulator::BatchTest> batch;
    batch.reserve(set.size());
    for (std::size_t t = 0; t < set.size(); ++t) {
      if (!failing[t]) continue;
      batch.push_back({&set.tests[t].scan_in, &set.tests[t].seq});
    }
    for (const FaultSet& det : fsim.detect_batch(batch, &candidates)) {
      det.for_each([&](std::size_t f) { ++explained[f]; });
    }
  }
  candidates.for_each([&](std::size_t f) {
    result.candidates.push_back(
        Candidate{static_cast<FaultClassId>(f), explained[f]});
  });
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.explained_failures != b.explained_failures) {
                return a.explained_failures > b.explained_failures;
              }
              return a.fault < b.fault;
            });
  return result;
}

}  // namespace scanc::diag
