// ATPG engine comparison (library substrate study, not a paper table):
// PODEM vs the D-algorithm on the suite circuits — per-engine detected /
// untestable / aborted counts, total backtracks, and wall time.  The two
// engines must agree on every non-aborted verdict (also enforced by the
// test suite on small circuits).
#include <chrono>
#include <cstdio>
#include <exception>

#include "atpg/dalg.hpp"
#include "atpg/podem.hpp"
#include "expt/options.hpp"
#include "fault/fault_list.hpp"
#include "gen/suite.hpp"

namespace {

using namespace scanc;

struct EngineStats {
  std::size_t detected = 0;
  std::size_t untestable = 0;
  std::size_t aborted = 0;
  std::uint64_t backtracks = 0;
  double seconds = 0.0;
};

template <typename Engine>
EngineStats run_engine(Engine& engine, const fault::FaultList& faults) {
  EngineStats s;
  const auto start = std::chrono::steady_clock::now();
  for (fault::FaultClassId id = 0; id < faults.num_classes(); ++id) {
    const atpg::PodemResult r = engine.generate(faults.representative(id));
    s.backtracks += r.backtracks;
    switch (r.status) {
      case atpg::PodemStatus::Detected:
        ++s.detected;
        break;
      case atpg::PodemStatus::Untestable:
        ++s.untestable;
        break;
      case atpg::PodemStatus::Aborted:
        ++s.aborted;
        break;
    }
  }
  s.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  return s;
}

void print(const char* engine, const char* circuit, const EngineStats& s) {
  std::printf("%-8s %-6s %8zu %8zu %8zu %10llu %8.2fs\n", circuit, engine,
              s.detected, s.untestable, s.aborted,
              static_cast<unsigned long long>(s.backtracks), s.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    expt::BenchConfig cfg = expt::parse_bench_args(argc, argv);
    if (cfg.circuits.empty()) {
      cfg.circuits = {"s298", "s382", "s820", "s1488", "b03", "b10"};
    }
    std::printf("%-8s %-6s %8s %8s %8s %10s %9s\n", "circuit", "engine",
                "det", "untest", "abort", "backtracks", "time");
    for (const std::string& name : cfg.circuits) {
      const auto entry = gen::find_suite_entry(name);
      const netlist::Circuit c = gen::build_suite_circuit(*entry);
      const fault::FaultList fl = fault::FaultList::build(c);
      atpg::Podem podem(c);
      atpg::Dalg dalg(c);
      print("podem", name.c_str(), run_engine(podem, fl));
      print("dalg", name.c_str(), run_engine(dalg, fl));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
