// Emits the measured-results markdown block used in EXPERIMENTS.md
// (cache-aware; run the table binaries or this tool once to populate).
#include "table_main.hpp"

int main(int argc, char** argv) {
  return scanc::bench::table_main(argc, argv,
                                  scanc::expt::write_markdown_report);
}
