// T0 source quality study: no-scan fault coverage of the greedy
// simulation-based generator vs plain random sequences, at matched
// lengths.  Motivates the paper's Table 1 vs Table 5 contrast: a better
// T0 detects more faults before scan is even used, leaving fewer
// length-one top-off tests.
#include <cstdio>
#include <exception>

#include "expt/options.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/suite.hpp"
#include "tgen/greedy_tgen.hpp"
#include "tgen/random_seq.hpp"

int main(int argc, char** argv) {
  using namespace scanc;
  try {
    expt::BenchConfig cfg = expt::parse_bench_args(argc, argv);
    if (cfg.circuits.empty()) {
      cfg.circuits = {"s298", "s382", "s820", "b03", "b09"};
    }
    std::printf("T0 quality: no-scan coverage at matched lengths\n");
    std::printf("%-8s %7s | %8s %8s | %8s\n", "circuit", "length",
                "greedy", "random", "classes");
    for (const std::string& name : cfg.circuits) {
      const auto entry = gen::find_suite_entry(name);
      const netlist::Circuit c = gen::build_suite_circuit(*entry);
      const fault::FaultList fl = fault::FaultList::build(c);
      fault::FaultSimulator fsim(c, fl);

      tgen::GreedyTgenOptions gopt;
      gopt.seed = cfg.runner.seed;
      gopt.max_length = 512;
      const tgen::GreedyTgenResult greedy =
          tgen::generate_test_sequence(c, fl, gopt);
      const sim::Sequence rnd = tgen::random_test_sequence(
          c, greedy.sequence.length(), cfg.runner.seed);
      const std::size_t rnd_det = fsim.detect_no_scan(rnd).count();
      std::printf("%-8s %7zu | %8zu %8zu | %8zu\n", name.c_str(),
                  greedy.sequence.length(), greedy.detected.count(),
                  rnd_det, fl.num_classes());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
