// load_gen — load generator / soak driver for the compaction service.
//
//   load_gen --socket=PATH [--jobs=N] [--clients=N] [--hostile-pct=P]
//            [--deadline-pct=P] [--seed=N] [--json-out=PATH] [--quiet]
//
// Drives `scanc-serve` with a mixed workload: many small-to-medium
// synthetic-circuit jobs at random priorities (a fraction carrying tight
// deadlines), plus a configurable fraction of hostile traffic —
// truncated frames, oversized length prefixes, garbage JSON, malformed
// specs, and submit-then-vanish clients.  Every *accepted* job is then
// tracked to a terminal state; clients transparently reconnect, so a
// mid-run daemon SIGTERM + restart (the CI soak) is survived rather
// than special-cased — resumed jobs simply finish after the restart.
//
// Reports client-observed latency percentiles (p50/p99), saturation
// throughput, and terminal-state counts; --json-out writes the same
// numbers for bench/check_service_baseline.py.  Exit status is 0 only
// if the daemon answered a final ping and every accepted job reached a
// terminal state.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "svc/client.hpp"
#include "svc/wire.hpp"
#include "util/rng.hpp"

namespace {

using scanc::svc::Client;
using scanc::svc::Json;

struct Options {
  std::string socket_path;
  std::size_t jobs = 200;
  std::size_t clients = 4;
  std::size_t hostile_pct = 0;
  std::size_t deadline_pct = 5;
  std::uint64_t seed = 1;
  std::string json_out;
  bool quiet = false;
};

struct Totals {
  std::mutex mutex;
  std::vector<double> latencies_ms;  // accepted jobs only
  std::size_t submitted = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t shed = 0;
  std::size_t quarantined = 0;
  std::size_t recovered = 0;  // done with attempts > 1
  std::size_t hostile = 0;
  std::size_t reconnects = 0;
  std::size_t lost = 0;  // accepted but never observed terminal
};

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      return a.c_str() + std::strlen(prefix);
    };
    std::uint64_t v = 0;
    if (a.rfind("--socket=", 0) == 0) {
      opt.socket_path = value("--socket=");
    } else if (a.rfind("--jobs=", 0) == 0 && parse_u64(value("--jobs="), v)) {
      opt.jobs = static_cast<std::size_t>(v);
    } else if (a.rfind("--clients=", 0) == 0 &&
               parse_u64(value("--clients="), v)) {
      opt.clients = std::max<std::size_t>(1, v);
    } else if (a.rfind("--hostile-pct=", 0) == 0 &&
               parse_u64(value("--hostile-pct="), v)) {
      opt.hostile_pct = std::min<std::size_t>(100, v);
    } else if (a.rfind("--deadline-pct=", 0) == 0 &&
               parse_u64(value("--deadline-pct="), v)) {
      opt.deadline_pct = std::min<std::size_t>(100, v);
    } else if (a.rfind("--seed=", 0) == 0 && parse_u64(value("--seed="), v)) {
      opt.seed = v;
    } else if (a.rfind("--json-out=", 0) == 0) {
      opt.json_out = value("--json-out=");
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else {
      std::cerr << "load_gen: unknown argument: " << a << "\n";
      return false;
    }
  }
  if (opt.socket_path.empty()) {
    std::cerr << "load_gen: --socket=PATH is required\n";
    return false;
  }
  return true;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A job spec of one of a handful of repeating shapes (so the daemon's
/// shared-state registry sees reuse) with per-job measurement seeds.
Json make_spec(scanc::util::Rng& rng, const Options& opt,
               const std::string& id) {
  static constexpr struct {
    const char* name;
    std::uint64_t inputs, outputs, ffs, gates;
  } kShapes[] = {
      {"lg-a", 4, 3, 4, 40},  {"lg-b", 5, 4, 6, 70},  {"lg-c", 6, 4, 8, 110},
      {"lg-d", 4, 4, 5, 55},  {"lg-e", 7, 5, 10, 160}, {"lg-f", 5, 3, 7, 90},
  };
  const auto& shape = kShapes[rng.below(std::size(kShapes))];
  Json gen = Json::object();
  gen.set("name", Json::string(shape.name));
  gen.set("inputs", Json::integer(shape.inputs));
  gen.set("outputs", Json::integer(shape.outputs));
  gen.set("flip_flops", Json::integer(shape.ffs));
  gen.set("gates", Json::integer(shape.gates));
  gen.set("seed", Json::integer(7));

  Json spec = Json::object();
  spec.set("id", Json::string(id));
  spec.set("kind", Json::string("gen"));
  spec.set("gen", std::move(gen));
  spec.set("seed", Json::integer(rng.range(1, 1u << 20)));
  spec.set("t0_length", Json::integer(rng.range(30, 90)));
  spec.set("priority", Json::integer(rng.range(0, 3)));
  if (rng.below(100) < opt.deadline_pct) {
    spec.set("deadline_seconds", Json::number(0.05));
  }
  return spec;
}

/// One shot of hostile traffic on a fresh connection.  Returns after the
/// connection is closed; the daemon must survive all of these.
void hostile_shot(const Options& opt, scanc::util::Rng& rng) {
  int fd = -1;
  try {
    fd = scanc::svc::connect_unix(opt.socket_path,
                                  scanc::util::Deadline::after(2.0));
  } catch (...) {
    return;  // daemon restarting; the slot still counts as hostile
  }
  const std::uint64_t attack = rng.below(4);
  const auto send_all = [&](const void* buf, std::size_t len) {
    (void)::send(fd, buf, len, MSG_NOSIGNAL);
  };
  switch (attack) {
    case 0: {  // garbage JSON in a well-formed frame
      static const char kGarbage[] = "{\"op\": \x01\x02 nonsense!!";
      const std::uint32_t len = sizeof(kGarbage) - 1;
      const unsigned char hdr[4] = {
          static_cast<unsigned char>(len >> 24),
          static_cast<unsigned char>(len >> 16),
          static_cast<unsigned char>(len >> 8),
          static_cast<unsigned char>(len)};
      send_all(hdr, 4);
      send_all(kGarbage, len);
      break;
    }
    case 1: {  // oversized length prefix
      const unsigned char hdr[4] = {0x7F, 0xFF, 0xFF, 0xFF};
      send_all(hdr, 4);
      break;
    }
    case 2: {  // truncated frame: promise 100 bytes, send 10, vanish
      const unsigned char hdr[4] = {0, 0, 0, 100};
      send_all(hdr, 4);
      send_all("0123456789", 10);
      break;
    }
    default: {  // malformed spec (valid JSON, rejected typed)
      try {
        Client c;
        c.connect(opt.socket_path, 2.0);
        Json spec = Json::object();
        spec.set("id", Json::string("../../etc/passwd"));
        spec.set("kind", Json::string("suite"));
        spec.set("circuit", Json::string("no-such-circuit"));
        (void)c.submit_raw(std::move(spec), 5.0);
      } catch (...) {
      }
      break;
    }
  }
  ::close(fd);
}

void client_loop(const Options& opt, Totals& totals, std::size_t index) {
  std::uint64_t mix = opt.seed;
  scanc::util::Rng rng(scanc::util::splitmix64(mix) + index * 7919);
  Client client;
  const auto connect = [&]() -> bool {
    for (int attempt = 0; attempt < 40; ++attempt) {
      try {
        client.connect(opt.socket_path, 1.0);
        return true;
      } catch (...) {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
    }
    return false;
  };
  if (!connect()) return;

  const std::size_t share =
      opt.jobs / opt.clients + (index < opt.jobs % opt.clients ? 1 : 0);
  std::vector<std::string> open_ids;
  for (std::size_t n = 0; n < share; ++n) {
    if (opt.hostile_pct != 0 && rng.below(100) < opt.hostile_pct) {
      hostile_shot(opt, rng);
      {
        std::lock_guard<std::mutex> lock(totals.mutex);
        totals.hostile++;
      }
      continue;
    }
    const std::string id = "lg-" + std::to_string(opt.seed) + "-" +
                           std::to_string(index) + "-" + std::to_string(n);
    Json spec = make_spec(rng, opt, id);
    const double submitted_at = now_s();
    bool accepted = false;
    // Submit with reconnect: idempotent ids make a retried submit safe
    // across a daemon restart.
    for (int attempt = 0; attempt < 40; ++attempt) {
      try {
        if (!client.connected() && !connect()) break;
        const Json resp = client.submit_raw(spec, 10.0);
        const Json* okv = resp.find("ok");
        if (okv == nullptr || !okv->as_bool()) break;  // typed rejection
        const Json* acc = resp.find("accepted");
        accepted = acc != nullptr && acc->is_bool() && acc->as_bool();
        break;
      } catch (...) {
        std::lock_guard<std::mutex> lock(totals.mutex);
        totals.reconnects++;
      }
    }
    {
      std::lock_guard<std::mutex> lock(totals.mutex);
      totals.submitted++;
      if (!accepted) {
        totals.rejected++;
        continue;
      }
      totals.accepted++;
    }

    // Track to terminal, reconnecting across restarts.
    std::string state;
    std::uint64_t attempts = 0;
    const double give_up = now_s() + 120.0;
    while (now_s() < give_up) {
      try {
        if (!client.connected() && !connect()) break;
        const Json resp = client.wait(id, 10.0);
        const Json* jobv = resp.find("job");
        if (jobv == nullptr) break;  // not_found after restart data loss
        state = jobv->find("state")->as_string();
        if (const Json* a = jobv->find("attempts")) attempts = a->as_u64();
        if (state != "queued" && state != "running") break;
        state.clear();
      } catch (...) {
        std::lock_guard<std::mutex> lock(totals.mutex);
        totals.reconnects++;
      }
    }
    const double latency_ms = (now_s() - submitted_at) * 1000.0;
    std::lock_guard<std::mutex> lock(totals.mutex);
    if (state == "done") {
      totals.done++;
      totals.latencies_ms.push_back(latency_ms);
      if (attempts > 1) totals.recovered++;
    } else if (state == "failed") {
      totals.failed++;
      totals.latencies_ms.push_back(latency_ms);
    } else if (state == "shed") {
      totals.shed++;
    } else if (state == "quarantined") {
      totals.quarantined++;
    } else {
      totals.lost++;
    }
  }
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  Totals totals;
  const double started = now_s();
  std::vector<std::thread> threads;
  threads.reserve(opt.clients);
  for (std::size_t i = 0; i < opt.clients; ++i) {
    threads.emplace_back(client_loop, std::cref(opt), std::ref(totals), i);
  }
  for (std::thread& t : threads) t.join();
  const double seconds = now_s() - started;

  bool daemon_alive = false;
  {
    Client probe;
    try {
      probe.connect(opt.socket_path, 5.0);
      daemon_alive = probe.ping();
    } catch (...) {
    }
  }

  const double p50 = percentile(totals.latencies_ms, 0.50);
  const double p99 = percentile(totals.latencies_ms, 0.99);
  const double throughput =
      seconds > 0.0 ? static_cast<double>(totals.done) / seconds : 0.0;

  if (!opt.quiet) {
    std::cout << "load_gen: " << totals.submitted << " submitted, "
              << totals.accepted << " accepted, " << totals.rejected
              << " rejected, " << totals.hostile << " hostile\n"
              << "  terminal: " << totals.done << " done, " << totals.failed
              << " failed, " << totals.shed << " shed, "
              << totals.quarantined << " quarantined, " << totals.lost
              << " lost\n"
              << "  recovered (done after retry): " << totals.recovered
              << ", reconnects: " << totals.reconnects << "\n"
              << "  latency p50 " << p50 << " ms, p99 " << p99
              << " ms; throughput " << throughput << " done/s over "
              << seconds << " s\n"
              << "  daemon alive at end: " << (daemon_alive ? "yes" : "NO")
              << "\n";
  }

  if (!opt.json_out.empty()) {
    Json j = Json::object();
    j.set("schema", Json::string("scanc-service-load-v1"));
    j.set("jobs", Json::integer(opt.jobs));
    j.set("clients", Json::integer(opt.clients));
    j.set("hostile_pct", Json::integer(opt.hostile_pct));
    j.set("submitted", Json::integer(totals.submitted));
    j.set("accepted", Json::integer(totals.accepted));
    j.set("rejected", Json::integer(totals.rejected));
    j.set("hostile", Json::integer(totals.hostile));
    j.set("done", Json::integer(totals.done));
    j.set("failed", Json::integer(totals.failed));
    j.set("shed", Json::integer(totals.shed));
    j.set("quarantined", Json::integer(totals.quarantined));
    j.set("lost", Json::integer(totals.lost));
    j.set("recovered", Json::integer(totals.recovered));
    j.set("reconnects", Json::integer(totals.reconnects));
    j.set("p50_ms", Json::number(p50));
    j.set("p99_ms", Json::number(p99));
    j.set("throughput_done_per_s", Json::number(throughput));
    j.set("seconds", Json::number(seconds));
    j.set("daemon_alive", Json::boolean(daemon_alive));
    std::ofstream out(opt.json_out);
    out << j.dump() << "\n";
    if (!out) {
      std::cerr << "load_gen: failed to write " << opt.json_out << "\n";
      return 2;
    }
  }

  // Success = the daemon survived and no accepted job vanished.
  return (daemon_alive && totals.lost == 0) ? 0 : 1;
}
