// Regenerates the paper's Table 5: detection and length details for the
// random-T0 (length 1000) variant of the proposed procedure.
#include "table_main.hpp"

int main(int argc, char** argv) {
  return scanc::bench::table_main(argc, argv, scanc::expt::print_table5);
}
