// Partial-scan extension experiment (not a paper table; the paper notes
// the procedure "can be extended to the case of partial-scan circuits").
//
// Sweeps the scanned fraction of the flip-flops and reports, per
// circuit and fraction: achievable coverage, tau_seq length, added
// tests, and test application time (scan operations now cost only
// N_scanned cycles each).
#include <cstdio>
#include <exception>

#include "atpg/comb_tset.hpp"
#include "expt/options.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/suite.hpp"
#include "tcomp/pipeline.hpp"
#include "tgen/random_seq.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace scanc;
  try {
    expt::BenchConfig cfg = expt::parse_bench_args(argc, argv);
    if (cfg.circuits.empty()) {
      cfg.circuits = {"s298", "s382", "b03", "b10"};
    }

    std::printf("Partial-scan sweep (random T0, length 300)\n");
    std::printf("%-8s %6s %6s | %8s %8s %8s %9s\n", "circuit", "scan%",
                "Nscan", "coverage", "|T_seq|", "added", "N_cyc");
    for (const std::string& name : cfg.circuits) {
      const auto entry = gen::find_suite_entry(name);
      const netlist::Circuit circuit = gen::build_suite_circuit(*entry);
      const fault::FaultList faults = fault::FaultList::build(circuit);
      const std::size_t nff = circuit.num_flip_flops();
      const sim::Sequence t0 =
          tgen::random_test_sequence(circuit, 300, cfg.runner.seed);

      for (const int percent : {25, 50, 75, 100}) {
        // Deterministic mask: scan the first k flip-flops.
        const std::size_t k = (nff * static_cast<std::size_t>(percent)) / 100;
        util::Bitset mask(nff);
        for (std::size_t i = 0; i < k; ++i) mask.set(i);

        atpg::CombTestSetOptions copt;
        copt.seed = cfg.runner.seed;
        copt.podem.scan_mask = mask;
        const atpg::CombTestSet comb =
            atpg::generate_comb_test_set(circuit, faults, copt);
        if (comb.tests.empty()) {
          std::printf("%-8s %6d %6zu | %8s\n", name.c_str(), percent, k,
                      "(no tests)");
          continue;
        }
        fault::FaultSimulator fsim(circuit, faults, mask);
        const tcomp::PipelineResult r =
            tcomp::run_pipeline(fsim, t0, comb.tests);
        std::printf("%-8s %6d %6zu | %7.1f%% %8zu %8zu %9llu\n",
                    name.c_str(), percent, k,
                    100.0 * static_cast<double>(r.final_coverage.count()) /
                        static_cast<double>(faults.num_classes()),
                    r.tau_seq.seq.length(), r.added_tests,
                    static_cast<unsigned long long>(
                        tcomp::clock_cycles(r.compacted, k)));
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
