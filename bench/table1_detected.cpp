// Regenerates the paper's Table 1: faults detected by T0, by tau_seq, and
// by the final test set, per circuit.
#include "table_main.hpp"

int main(int argc, char** argv) {
  return scanc::bench::table_main(argc, argv, scanc::expt::print_table1);
}
