// Regenerates the paper's Table 2: L(T0), L(T_seq), and the number of
// tests added in Phase 3.
#include "table_main.hpp"

int main(int argc, char** argv) {
  return scanc::bench::table_main(argc, argv, scanc::expt::print_table2);
}
