#!/usr/bin/env python3
"""Validate a JSONL event log (--event-log / the watch stream payloads).

Each line must be one JSON object with the scanc event schema
(docs/observability.md "Live events"):

    {"kind","job","phase","seq","t_us","faults","value","note"}

Checks per line: every key present, `kind` is a known name, the numeric
fields are non-negative integers, and the string fields are strings.
Across the file: for every job id, `seq` is strictly increasing (the
per-job sequence is gap-free at the source; the log sink sees every
published event, so a gap here means lost writes) and `t_us` is
non-decreasing per job.

Usage: check_events_schema.py EVENTS.jsonl [EVENTS.jsonl ...]

Exit 0 on success; prints every violation and exits 1 otherwise.
"""

import json
import sys

KNOWN_KINDS = {"phase_begin", "phase_end", "round", "counters", "job_state"}
STRING_FIELDS = ("kind", "job", "phase", "note")
INT_FIELDS = ("seq", "t_us", "faults", "value")

errors = 0


def error(message):
    global errors
    errors += 1
    print(f"FAIL: {message}")


def check_file(path):
    # seq gaps are legal across rotation (path.1 holds the evicted
    # prefix), so monotonicity — not contiguity — is the invariant here.
    last_seq = {}
    last_t = {}
    lines = 0
    try:
        f = open(path)
    except OSError as e:
        error(f"{path}: unreadable: {e}")
        return
    with f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            where = f"{path}:{lineno}"
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                error(f"{where}: invalid JSON: {e}")
                continue
            if not isinstance(ev, dict):
                error(f"{where}: not an object")
                continue
            for key in STRING_FIELDS:
                if not isinstance(ev.get(key), str):
                    error(f"{where}: '{key}' missing or not a string")
            for key in INT_FIELDS:
                v = ev.get(key)
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    error(f"{where}: '{key}' = {v!r} is not a "
                          "non-negative integer")
            kind = ev.get("kind")
            if isinstance(kind, str) and kind not in KNOWN_KINDS:
                error(f"{where}: unknown kind {kind!r}")
            job = ev.get("job")
            seq = ev.get("seq")
            t_us = ev.get("t_us")
            if isinstance(job, str) and isinstance(seq, int):
                if seq <= last_seq.get(job, 0):
                    error(f"{where}: job {job!r} seq {seq} is not above "
                          f"the previous {last_seq[job]}")
                last_seq[job] = seq
            if isinstance(job, str) and isinstance(t_us, int):
                if t_us < last_t.get(job, 0):
                    error(f"{where}: job {job!r} t_us {t_us} went "
                          f"backwards from {last_t[job]}")
                last_t[job] = max(last_t.get(job, 0), t_us)
    print(f"{path}: {lines} events across {len(last_seq)} jobs")
    if lines == 0:
        error(f"{path}: no events (sink never attached?)")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    for path in sys.argv[1:]:
        check_file(path)
    sys.exit(1 if errors else 0)


if __name__ == "__main__":
    main()
