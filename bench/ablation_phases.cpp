// Ablation study over the design choices DESIGN.md §7 calls out:
//
//   full        — the complete procedure (paper configuration)
//   i1-rule     — scan-out selection maximizing |F_SO| instead of the
//                 earliest full-coverage time (Section 3.1 discussion)
//   no-omit     — Phase 2 (vector omission) disabled
//   no-iter     — single pass of Phases 1-2 (no re-selection loop)
//   no-phase4   — final static compaction skipped
//
// Prints N_cyc, |T_seq|, detection of tau_seq, and added tests per
// configuration on a few representative circuits.
#include <cstdio>
#include <exception>
#include <vector>

#include "atpg/comb_tset.hpp"
#include "expt/options.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/suite.hpp"
#include "tcomp/pipeline.hpp"
#include "tgen/greedy_tgen.hpp"

namespace {

using namespace scanc;

struct Config {
  const char* name;
  tcomp::PipelineOptions options;
};

std::vector<Config> configurations() {
  std::vector<Config> cfgs;
  cfgs.push_back({"full", {}});
  {
    tcomp::PipelineOptions o;
    o.iterate.phase1.scan_out_rule = tcomp::ScanOutRule::LargestSet;
    cfgs.push_back({"i1-rule", o});
  }
  {
    tcomp::PipelineOptions o;
    o.iterate.apply_omission = false;
    cfgs.push_back({"no-omit", o});
  }
  {
    tcomp::PipelineOptions o;
    o.iterate.iterate = false;
    cfgs.push_back({"no-iter", o});
  }
  {
    tcomp::PipelineOptions o;
    o.run_phase4 = false;
    cfgs.push_back({"no-phase4", o});
  }
  {
    tcomp::PipelineOptions o;
    o.iterate.phase2_method = tcomp::Phase2Method::Restoration;
    cfgs.push_back({"restore", o});
  }
  return cfgs;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    expt::BenchConfig cfg = expt::parse_bench_args(argc, argv);
    if (cfg.circuits.empty()) {
      cfg.circuits = {"s298", "s382", "s820", "b03", "b10"};
    }

    std::printf("Ablation: pipeline configurations (greedy T0)\n");
    std::printf("%-8s %-10s %9s %8s %8s %7s\n", "circuit", "config",
                "N_cyc", "|T_seq|", "det_seq", "added");
    for (const std::string& name : cfg.circuits) {
      const auto entry = gen::find_suite_entry(name);
      const netlist::Circuit circuit = gen::build_suite_circuit(*entry);
      const fault::FaultList faults = fault::FaultList::build(circuit);
      fault::FaultSimulator fsim(circuit, faults);
      atpg::CombTestSetOptions copt;
      copt.seed = cfg.runner.seed;
      const atpg::CombTestSet comb =
          atpg::generate_comb_test_set(circuit, faults, copt);
      tgen::GreedyTgenOptions gopt;
      gopt.seed = cfg.runner.seed;
      gopt.max_length = 1024;
      const tgen::GreedyTgenResult t0 =
          tgen::generate_test_sequence(circuit, faults, gopt);

      for (const Config& c : configurations()) {
        const tcomp::PipelineResult r =
            tcomp::run_pipeline(fsim, t0.sequence, comb.tests, c.options);
        std::printf("%-8s %-10s %9llu %8zu %8zu %7zu\n", name.c_str(),
                    c.name,
                    static_cast<unsigned long long>(tcomp::clock_cycles(
                        r.compacted, circuit.num_flip_flops())),
                    r.tau_seq.seq.length(), r.f_seq.count(),
                    r.added_tests);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
