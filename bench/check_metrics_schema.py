#!/usr/bin/env python3
"""Validate the telemetry artifacts a run produces.

Checks the --metrics-out snapshot against the scanc-metrics-v1 schema
(counters / gauges / derived / histograms / phases sections with the
expected keys and types) and, when a trace file is given, that the
--trace-out file is loadable Chrome trace-event JSON with at least one
complete ("ph":"X") span and consistent nesting (every pair of spans on
one tid either nests or is disjoint).

Usage: check_metrics_schema.py METRICS.json [TRACE.json]

Exit 0 on success; prints every violation and exits 1 otherwise.
Metric catalog: docs/observability.md.
"""

import json
import sys

EXPECTED_COUNTERS = [
    "frames_simulated", "frames_skipped", "cone_passes", "full_passes",
    "cone_gates_scheduled", "cone_gates_dropped", "tdf_activations",
    "tdf_frames_skipped", "ppsfp_batches", "ppsfp_tests_packed",
    "wide_fp_passes", "trace_cache_hits",
    "trace_cache_misses", "trace_cache_extensions",
    "trace_cache_partial_reuses", "trace_cache_evictions", "pool_tasks_run",
    "pool_queue_wait_ns", "pool_busy_ns", "groups_executed", "queries_run",
    "faults_detected", "iterate_rounds",
    "atpg_sat_solve_calls", "atpg_sat_conflicts", "atpg_sat_proofs",
    "atpg_sat_fallbacks",
    "check_cases_run",
    "check_queries_compared", "check_divergences", "check_shrink_steps",
    "check_case_timeouts",
    "jobs_submitted", "jobs_accepted", "jobs_rejected", "jobs_shed",
    "jobs_started", "jobs_done", "jobs_failed", "jobs_retried",
    "jobs_quarantined", "jobs_deadline_cut", "jobs_resumed",
    "svc_connections", "svc_frames_read", "svc_frames_written",
    "svc_bytes_read", "svc_bytes_written", "svc_protocol_errors",
    "registry_circuit_hits", "registry_circuit_misses",
    "registry_sim_reuses",
]
EXPECTED_GAUGES = [
    "trace_cache_size", "threads_configured", "simd_lane_width",
    "ppsfp_tests_per_pass", "svc_queue_depth", "svc_jobs_running",
]
EXPECTED_DERIVED = [
    "frame_skip_ratio", "trace_cache_hit_ratio", "cone_pass_ratio",
    "cone_gates_dropped_ratio", "pool_mean_queue_wait_ns",
]
EXPECTED_HISTOGRAMS = [
    "queue_wait_ns", "task_run_ns", "query_ns", "job_queue_ns",
    "job_run_ns", "job_latency_ns",
]

errors = []


def error(message):
    errors.append(message)
    print(f"FAIL: {message}")


def check_metrics(path):
    try:
        with open(path) as f:
            m = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        error(f"{path}: unreadable or invalid JSON: {e}")
        return
    if m.get("schema") != "scanc-metrics-v1":
        error(f"{path}: schema is {m.get('schema')!r}, "
              "expected 'scanc-metrics-v1'")
    # Snapshot ordering stamps: a per-process monotonic sequence plus a
    # wall-clock emission time, so consumers can order snapshots from one
    # process and correlate them across processes.
    if not isinstance(m.get("sequence"), int) or m.get("sequence") < 1:
        error(f"{path}: 'sequence' = {m.get('sequence')!r} is not a "
              "positive integer")
    if (not isinstance(m.get("emitted_unix_ms"), int)
            or m.get("emitted_unix_ms") < 1_600_000_000_000):
        error(f"{path}: 'emitted_unix_ms' = {m.get('emitted_unix_ms')!r} "
              "is not a plausible unix-epoch millisecond stamp")
    for section, keys in [
        ("counters", EXPECTED_COUNTERS),
        ("gauges", EXPECTED_GAUGES),
        ("derived", EXPECTED_DERIVED),
        ("histograms", EXPECTED_HISTOGRAMS),
    ]:
        if section not in m or not isinstance(m[section], dict):
            error(f"{path}: missing '{section}' object")
            continue
        for key in keys:
            if key not in m[section]:
                error(f"{path}: {section}.{key} missing")
    for name, value in m.get("counters", {}).items():
        if not isinstance(value, int) or value < 0:
            error(f"{path}: counters.{name} = {value!r} is not a "
                  "non-negative integer")
    for name, value in m.get("derived", {}).items():
        if not isinstance(value, (int, float)):
            error(f"{path}: derived.{name} = {value!r} is not a number")
    for name, hist in m.get("histograms", {}).items():
        if not isinstance(hist, dict):
            error(f"{path}: histograms.{name} is not an object")
            continue
        for field in ("count", "sum", "min", "max", "buckets"):
            if field not in hist:
                error(f"{path}: histograms.{name}.{field} missing")
        if isinstance(hist.get("buckets"), list) and "count" in hist:
            if sum(hist["buckets"]) != hist["count"]:
                error(f"{path}: histograms.{name} bucket sum "
                      f"{sum(hist['buckets'])} != count {hist['count']}")
    if "phases" not in m or not isinstance(m["phases"], list):
        error(f"{path}: missing 'phases' array")
    else:
        for i, phase in enumerate(m["phases"]):
            for field in ("name", "seconds", "faults_delta"):
                if field not in phase:
                    error(f"{path}: phases[{i}].{field} missing")
    print(f"{path}: {len(m.get('counters', {}))} counters, "
          f"{len(m.get('phases', []))} phase records")


def check_trace(path):
    try:
        with open(path) as f:
            t = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        error(f"{path}: unreadable or invalid JSON: {e}")
        return
    events = t.get("traceEvents")
    if not isinstance(events, list):
        error(f"{path}: no 'traceEvents' array")
        return
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        error(f"{path}: no complete ('ph':'X') span events")
    for i, e in enumerate(spans):
        for field in ("name", "cat", "ts", "dur", "pid", "tid"):
            if field not in e:
                error(f"{path}: span[{i}] missing '{field}'")
    # Spans on one tid must nest or be disjoint (Perfetto renders them as
    # a stack; a partial overlap means broken span scoping).  Sorting by
    # (start, -end) puts a container before the spans it contains even
    # when they share a start timestamp; a sweep with a stack of open
    # spans then catches any span that outlives its enclosing one.
    by_tid = {}
    for e in spans:
        by_tid.setdefault(e.get("tid"), []).append(
            (e.get("ts", 0), e.get("ts", 0) + e.get("dur", 0),
             e.get("name")))
    overlaps = 0
    for tid, intervals in by_tid.items():
        intervals.sort(key=lambda iv: (iv[0], -iv[1]))
        stack = []
        for start, end, name in intervals:
            while stack and stack[-1][1] <= start:
                stack.pop()
            if stack and end > stack[-1][1]:
                if overlaps == 0:
                    error(f"{path}: tid {tid}: span '{name}' "
                          f"[{start},{end}] extends past enclosing "
                          f"'{stack[-1][2]}' [{stack[-1][0]},"
                          f"{stack[-1][1]}] (broken nesting)")
                overlaps += 1
            stack.append((start, end, name))
    print(f"{path}: {len(events)} events, {len(spans)} spans on "
          f"{len(by_tid)} threads")


def main():
    if len(sys.argv) not in (2, 3):
        sys.exit(__doc__)
    check_metrics(sys.argv[1])
    if len(sys.argv) == 3:
        check_trace(sys.argv[2])
    sys.exit(1 if errors else 0)


if __name__ == "__main__":
    main()
