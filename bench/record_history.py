#!/usr/bin/env python3
"""Append one CI perf result to the bench/history/ JSONL ledger.

CI gates (check_kernel_baseline.py, check_service_baseline.py) only
answer "did this run regress past the floor?" — slow drift inside the
tolerance band is invisible.  This script keeps the longitudinal record:
each perf-smoke / service-load run appends one compact JSON line to
bench/history/<kind>.jsonl, and the deltas against the previous entry
are printed so a trend shows up in the CI log itself.

    record_history.py --kind kernel  BENCH_kernel.json
    record_history.py --kind service load.json
    record_history.py --kind atpg    BENCH_atpg.json

Kernel entries record the full/cone speedup per block count plus the
SIMD-wide and PPSFP same-run ratios (noise-robust, like the gates).
Service entries record throughput and latency percentiles.  ATPG
entries record the SAT-backend-vs-PODEM per-fault cost ratio and the
transition-vs-stuck-at SAT encoding ratio per circuit size (the price
of --atpg=sat completeness; see docs/atpg.md).  Every entry
carries a UTC timestamp and the commit sha (GITHUB_SHA or git
rev-parse).  Recording never fails the build: a malformed input exits 1
loudly, but a missing previous entry just means "no deltas yet".
"""

import argparse
import datetime
import json
import os
import subprocess
import sys


def fail(message):
    print(f"error: {message}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")


def commit_sha():
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            check=True, timeout=10).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def real_times(bench_json, prefix):
    """{arg: real_time} for one BM_* family in google-benchmark output."""
    out = {}
    for bench in bench_json.get("benchmarks", []):
        name = bench.get("name", "")
        if name.startswith(prefix + "/") and "real_time" in bench:
            out[name.split("/", 1)[1]] = float(bench["real_time"])
    return out


def kernel_metrics(path):
    data = load_json(path)
    if "benchmarks" not in data:
        fail(f"{path} has no 'benchmarks' array - not google-benchmark "
             "JSON output?")
    full = real_times(data, "BM_KernelFull")
    cone = real_times(data, "BM_KernelCone")
    wide = real_times(data, "BM_KernelWide")
    per_test = real_times(data, "BM_KernelPerTest")
    ppsfp = real_times(data, "BM_KernelPPSFP")
    metrics = {}
    for arg in sorted(set(full) & set(cone), key=int):
        if cone[arg] > 0:
            metrics[f"cone_speedup/{arg}"] = round(full[arg] / cone[arg], 3)
    for arg in sorted(set(full) & set(wide), key=int):
        if wide[arg] > 0:
            metrics[f"simd_wide/{arg}"] = round(full[arg] / wide[arg], 3)
    for arg in sorted(set(per_test) & set(ppsfp), key=int):
        if ppsfp[arg] > 0:
            metrics[f"simd_ppsfp/{arg}"] = round(
                per_test[arg] / ppsfp[arg], 3)
    if not metrics:
        fail(f"{path} contains no comparable BM_Kernel*/N pairs")
    return metrics


def atpg_metrics(path):
    data = load_json(path)
    if "benchmarks" not in data:
        fail(f"{path} has no 'benchmarks' array - not google-benchmark "
             "JSON output?")
    podem = real_times(data, "BM_AtpgPodem")
    sat = real_times(data, "BM_AtpgSat")
    tdf = real_times(data, "BM_AtpgSatTransition")
    metrics = {}
    for arg in sorted(set(podem) & set(sat), key=int):
        if podem[arg] > 0:
            metrics[f"sat_vs_podem/{arg}"] = round(sat[arg] / podem[arg], 3)
    for arg in sorted(set(sat) & set(tdf), key=int):
        if sat[arg] > 0:
            metrics[f"tdf_vs_stuck/{arg}"] = round(tdf[arg] / sat[arg], 3)
    if not metrics:
        fail(f"{path} contains no comparable BM_Atpg*/N pairs")
    return metrics


def service_metrics(path):
    data = load_json(path)
    if data.get("schema") != "scanc-service-load-v1":
        fail(f"{path}: unexpected schema {data.get('schema')!r}")
    metrics = {}
    for key in ("throughput_done_per_s", "p50_ms", "p99_ms", "done",
                "failed", "shed", "seconds"):
        if key in data:
            metrics[key] = data[key]
    if "throughput_done_per_s" not in metrics:
        fail(f"{path} has no throughput_done_per_s")
    return metrics


def last_entry(history_path):
    try:
        with open(history_path) as f:
            lines = [ln for ln in f if ln.strip()]
    except OSError:
        return None
    if not lines:
        return None
    try:
        return json.loads(lines[-1])
    except json.JSONDecodeError:
        return None  # a corrupt tail must not block recording


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--kind", choices=("kernel", "service", "atpg"),
                        required=True)
    parser.add_argument("results", help="BENCH_kernel.json or load.json")
    parser.add_argument("--out-dir", default="bench/history")
    args = parser.parse_args()

    extract = {"kernel": kernel_metrics, "service": service_metrics,
               "atpg": atpg_metrics}[args.kind]
    metrics = extract(args.results)
    entry = {
        "recorded_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "commit": commit_sha(),
        "kind": args.kind,
        "metrics": metrics,
    }

    os.makedirs(args.out_dir, exist_ok=True)
    history_path = os.path.join(args.out_dir, f"{args.kind}.jsonl")
    previous = last_entry(history_path)
    with open(history_path, "a") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")

    print(f"recorded {args.kind} entry -> {history_path}")
    if previous is None or "metrics" not in previous:
        print("no previous entry; deltas start with the next run")
        return
    prev = previous["metrics"]
    print(f"deltas vs {previous.get('commit', '?')[:12]} "
          f"({previous.get('recorded_utc', '?')}):")
    for key in sorted(metrics):
        now = metrics[key]
        if key not in prev or not isinstance(now, (int, float)):
            print(f"  {key:24} {now}  (new)")
            continue
        was = prev[key]
        pct = (f" ({100.0 * (now - was) / was:+.1f}%)"
               if isinstance(was, (int, float)) and was else "")
        print(f"  {key:24} {was} -> {now}{pct}")


if __name__ == "__main__":
    main()
