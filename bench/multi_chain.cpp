// Multi-scan-chain study (extension; the paper assumes one chain).
//
// With c balanced chains a scan operation costs ceil(N_SV/c) cycles, so
// the scan component of N_cyc shrinks as chains are added while the
// at-speed component is fixed.  This bench derives, from the cached
// measurements, how the proposed procedure's advantage over the [4]
// baseline scales with the chain count — the [4] sets have many more
// scan operations, so extra chains help them more, narrowing (but, on
// these circuits, not closing) the gap.
#include <cinttypes>
#include <cstdio>
#include <exception>

#include "expt/options.hpp"
#include "tcomp/scan_test.hpp"

int main(int argc, char** argv) {
  using namespace scanc;
  try {
    const expt::BenchConfig cfg = expt::parse_bench_args(argc, argv);
    const std::vector<expt::CircuitRun> runs = expt::run_configured(cfg);

    std::printf("Multi-chain sweep: proposed-compacted N_cyc (and ratio "
                "vs one chain)\n");
    std::printf("%-8s %6s | %9s %9s %9s %9s\n", "circuit", "ff", "1 chain",
                "2 chains", "4 chains", "8 chains");
    for (const expt::CircuitRun& r : runs) {
      if (r.atpg.tests_final == 0) {
        std::printf("%-8s (cache predates composition fields; rerun with "
                    "--fresh)\n",
                    r.name.c_str());
        continue;
      }
      std::printf("%-8s %6zu |", r.name.c_str(), r.flip_flops);
      for (const std::size_t chains : {1u, 2u, 4u, 8u}) {
        std::printf(" %9" PRIu64,
                    tcomp::clock_cycles_from_counts(r.atpg.tests_final,
                                                    r.atpg.vectors_final,
                                                    r.flip_flops, chains));
      }
      std::printf("\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
