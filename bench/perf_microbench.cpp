// Substrate micro-benchmarks (google-benchmark): throughput of the
// engines everything else is built on.  Not a paper table — use these to
// track performance regressions of the simulator/ATPG kernels.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "atpg/comb_tset.hpp"
#include "netlist/circuit.hpp"
#include "atpg/podem.hpp"
#include "atpg/sat_backend.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "fault/model.hpp"
#include "gen/circuit_gen.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/bench_writer.hpp"
#include "sim/seq_sim.hpp"
#include "sim/simd.hpp"
#include "tgen/random_seq.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace {

using namespace scanc;

netlist::Circuit mid_circuit() {
  gen::GenParams p;
  p.name = "bench";
  p.seed = 12345;
  p.num_inputs = 16;
  p.num_outputs = 16;
  p.num_flip_flops = 64;
  p.num_gates = 1000;
  return gen::generate_circuit(p);
}

void BM_FaultFreeSimulation(benchmark::State& state) {
  const netlist::Circuit c = mid_circuit();
  const sim::Sequence seq =
      tgen::random_test_sequence(c, static_cast<std::size_t>(state.range(0)),
                                 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_fault_free(c, nullptr, seq));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * state.range(0)) *
          static_cast<double>(c.num_gates()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FaultFreeSimulation)->Arg(64)->Arg(256);

void BM_ParallelFaultSimulation(benchmark::State& state) {
  const netlist::Circuit c = mid_circuit();
  const fault::FaultList fl = fault::FaultList::build(c);
  fault::FaultSimulator fsim(c, fl);
  const sim::Sequence seq = tgen::random_test_sequence(c, 64, 11);
  util::Rng rng(3);
  const sim::Vector3 si = sim::random_vector(c.num_flip_flops(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detect_scan_test(si, seq));
  }
  // Faults simulated per second (all classes, 64-frame test).
  state.counters["faults/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(fl.num_classes()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelFaultSimulation);

// Thread-count sweep over the two hottest queries (the BENCH_*.json
// speedup tracker): same work as the serial benchmarks above, fanned
// across the group-execution layer.  Real time is the honest metric for
// a multi-threaded region.
void BM_DetectScanTestThreads(benchmark::State& state) {
  const netlist::Circuit c = mid_circuit();
  const fault::FaultList fl = fault::FaultList::build(c);
  fault::FaultSimulator fsim(c, fl);
  fsim.set_num_threads(static_cast<std::size_t>(state.range(0)));
  const sim::Sequence seq = tgen::random_test_sequence(c, 64, 11);
  util::Rng rng(3);
  const sim::Vector3 si = sim::random_vector(c.num_flip_flops(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detect_scan_test(si, seq));
  }
  state.counters["faults/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(fl.num_classes()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DetectScanTestThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_DetectionTimesThreads(benchmark::State& state) {
  const netlist::Circuit c = mid_circuit();
  const fault::FaultList fl = fault::FaultList::build(c);
  fault::FaultSimulator fsim(c, fl);
  fsim.set_num_threads(static_cast<std::size_t>(state.range(0)));
  const sim::Sequence seq = tgen::random_test_sequence(c, 64, 11);
  util::Rng rng(3);
  const sim::Vector3 si = sim::random_vector(c.num_flip_flops(), rng);
  const fault::FaultSet all = fsim.all_faults();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detection_times(si, seq, all));
  }
  state.counters["faults/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(fl.num_classes()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DetectionTimesThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_DetectionTimesRecording(benchmark::State& state) {
  const netlist::Circuit c = mid_circuit();
  const fault::FaultList fl = fault::FaultList::build(c);
  fault::FaultSimulator fsim(c, fl);
  const sim::Sequence seq = tgen::random_test_sequence(c, 64, 11);
  util::Rng rng(3);
  const sim::Vector3 si = sim::random_vector(c.num_flip_flops(), rng);
  const fault::FaultSet all = fsim.all_faults();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detection_times(si, seq, all));
  }
}
BENCHMARK(BM_DetectionTimesRecording);

// Full vs cone kernel across circuit sizes (the BENCH_kernel.json
// artifact; see bench/check_kernel_baseline.py).
//
// The circuit is a row of independent 500-gate blocks sharing only the
// primary-input bus — the locality profile of a large scan design,
// where a fault group's union cone is a small slice of the chip.  (The
// plain random generator wires globally: any 63-fault union cone
// closes over ~85% of the gates there, and the cone kernel rightly
// degenerates to the full one; see the Auto threshold in
// fault/fault_sim.hpp.)  Identical work per pass, only the kernel
// differs; the cone advantage grows with the block count.
netlist::Circuit tiled_circuit(std::size_t tiles) {
  constexpr std::size_t kInputs = 16;
  netlist::CircuitBuilder b("tiled");
  std::vector<std::string> pis;
  for (std::size_t i = 0; i < kInputs; ++i) {
    pis.push_back("pi" + std::to_string(i));
    b.add_input(pis.back());
  }
  for (std::size_t k = 0; k < tiles; ++k) {
    gen::GenParams p;
    p.name = "tile";
    p.seed = 1000 + k;
    p.num_inputs = kInputs;
    p.num_outputs = 4;
    p.num_flip_flops = 24;
    p.num_gates = 500;
    const netlist::Circuit sub = gen::generate_circuit(p);
    const std::string prefix = "t" + std::to_string(k) + "_";
    const auto local = [&](netlist::NodeId id) -> std::string {
      const netlist::Node& n = sub.node(id);
      if (n.type == netlist::GateType::Input) {
        const std::span<const netlist::NodeId> sp = sub.primary_inputs();
        const std::size_t j = static_cast<std::size_t>(
            std::find(sp.begin(), sp.end(), id) - sp.begin());
        return pis[j];
      }
      return prefix + n.name;
    };
    for (netlist::NodeId id = 0; id < sub.num_nodes(); ++id) {
      const netlist::Node& n = sub.node(id);
      if (n.type == netlist::GateType::Input) continue;
      std::vector<std::string> fanins;
      std::vector<std::string_view> views;
      for (const netlist::NodeId f : n.fanins) fanins.push_back(local(f));
      for (const std::string& s : fanins) views.push_back(s);
      b.add_gate(n.type, prefix + n.name, views);
    }
    for (const netlist::NodeId po : sub.primary_outputs()) {
      b.mark_output(prefix + sub.node(po).name);
    }
  }
  return b.build();
}

void run_kernel_bench(benchmark::State& state, fault::KernelMode mode,
                      const fault::FaultModel& model =
                          fault::FaultModel::stuck_at(),
                      sim::LaneWidth lanes = sim::LaneWidth::W64) {
  const netlist::Circuit c = tiled_circuit(
      static_cast<std::size_t>(state.range(0)));
  const fault::FaultList fl = fault::FaultList::build(c, model);
  fault::FaultSimulator fsim(c, fl);
  fsim.set_kernel(mode);
  fsim.set_lane_width(lanes);
  const sim::Sequence seq = tgen::random_test_sequence(c, 32, 11);
  util::Rng rng(3);
  const sim::Vector3 si = sim::random_vector(c.num_flip_flops(), rng);
  const obs::CounterSnapshot before = obs::snapshot_counters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detect_scan_test(si, seq));
  }
  const obs::CounterSnapshot delta =
      obs::counter_delta(obs::snapshot_counters(), before);
  const auto at = [&delta](obs::Counter x) {
    return static_cast<double>(delta[static_cast<std::size_t>(x)]);
  };
  // Group-frames per second: every group steps through the whole test.
  const double group_frames =
      static_cast<double>(fault::num_groups(fl.num_classes())) *
      static_cast<double>(seq.length());
  state.counters["group_frames/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * group_frames,
      benchmark::Counter::kIsRate);
  state.counters["gates"] = benchmark::Counter(
      static_cast<double>(c.num_gates()));
  // Kernel efficiency (checked against BENCH_kernel_baseline.json's
  // "efficiency" section): how much work the kernel avoided, not just
  // how fast it ran.
  const double frames = at(obs::Counter::FramesSimulated) +
                        at(obs::Counter::FramesSkipped);
  state.counters["frames_skipped_ratio"] = benchmark::Counter(
      frames > 0.0 ? at(obs::Counter::FramesSkipped) / frames : 0.0);
  const double reuse = at(obs::Counter::TraceCacheHits) +
                       at(obs::Counter::TraceCacheExtensions) +
                       at(obs::Counter::TraceCachePartialReuses);
  const double lookups = reuse + at(obs::Counter::TraceCacheMisses);
  state.counters["cache_hit_ratio"] = benchmark::Counter(
      lookups > 0.0 ? reuse / lookups : 0.0);
  if (model.frame_gated()) {
    // Activation-aware skipping: the fraction of group-frames the TDF
    // kernel never simulated because no fault in the group launched.
    const double tdf_frames = at(obs::Counter::FramesSimulated) +
                              at(obs::Counter::TdfFramesSkipped);
    state.counters["tdf_skip_ratio"] = benchmark::Counter(
        tdf_frames > 0.0 ? at(obs::Counter::TdfFramesSkipped) / tdf_frames
                         : 0.0);
  }
}

void BM_KernelFull(benchmark::State& state) {
  run_kernel_bench(state, fault::KernelMode::Full);
}
BENCHMARK(BM_KernelFull)->Arg(2)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_KernelCone(benchmark::State& state) {
  run_kernel_bench(state, fault::KernelMode::Cone);
}
BENCHMARK(BM_KernelCone)->Arg(2)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// The frame-gated transition kernel on the same tiled circuit (Auto
// kernel selection, like production runs).  Tracked by the baseline's
// "transition" section: the tdf_skip_ratio counter pins the
// activation-aware frame skipping that makes TDF passes cheap.
void BM_KernelTDF(benchmark::State& state) {
  run_kernel_bench(state, fault::KernelMode::Auto,
                   fault::FaultModel::transition());
}
BENCHMARK(BM_KernelTDF)->Arg(2)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Wide fault-parallel engine on the same tiled circuit and query as
// BM_KernelFull (which pins the scalar 64-bit kernels): the ratio
// full/wide is the SIMD widening gain, gated by the baseline's "simd"
// section.
void BM_KernelWide(benchmark::State& state) {
  run_kernel_bench(state, fault::KernelMode::Full,
                   fault::FaultModel::stuck_at(), sim::LaneWidth::Auto);
  const sim::SimdConfig simd = sim::resolve_simd(sim::LaneWidth::Auto);
  state.counters["lane_bits"] =
      benchmark::Counter(static_cast<double>(simd.bits));
}
BENCHMARK(BM_KernelWide)->Arg(2)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Pattern-parallel (PPSFP) batch scoring vs per-test scoring: the same
// 16 scan tests on the tiled circuit, scored one detect_scan_test at a
// time on the scalar Full kernel (BM_KernelPerTest) and in one
// detect_batch call that packs lanes() tests per wide pass
// (BM_KernelPPSFP).  Their ratio is the PPSFP gain the baseline gates.
struct PpsfpMaterial {
  netlist::Circuit circuit;
  fault::FaultList faults;
  std::vector<sim::Vector3> scan_ins;
  std::vector<sim::Sequence> seqs;
  std::vector<fault::FaultSimulator::BatchTest> batch;
};

PpsfpMaterial ppsfp_material(std::size_t tiles) {
  constexpr std::size_t kTests = 16;
  PpsfpMaterial m{tiled_circuit(tiles), {}, {}, {}, {}};
  m.faults = fault::FaultList::build(m.circuit);
  util::Rng rng(29);
  for (std::size_t i = 0; i < kTests; ++i) {
    m.scan_ins.push_back(
        sim::random_vector(m.circuit.num_flip_flops(), rng));
    m.seqs.push_back(
        tgen::random_test_sequence(m.circuit, 32, 500 + i));
  }
  m.batch.resize(kTests);
  for (std::size_t i = 0; i < kTests; ++i) {
    m.batch[i] = {&m.scan_ins[i], &m.seqs[i]};
  }
  return m;
}

void BM_KernelPerTest(benchmark::State& state) {
  const PpsfpMaterial m =
      ppsfp_material(static_cast<std::size_t>(state.range(0)));
  fault::FaultSimulator fsim(m.circuit, m.faults);
  fsim.set_kernel(fault::KernelMode::Full);
  fsim.set_lane_width(sim::LaneWidth::W64);
  for (auto _ : state) {
    for (std::size_t i = 0; i < m.batch.size(); ++i) {
      benchmark::DoNotOptimize(
          fsim.detect_scan_test(m.scan_ins[i], m.seqs[i]));
    }
  }
  state.counters["tests/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * m.batch.size()),
      benchmark::Counter::kIsRate);
}
// Arg(16) is deliberately absent: the per-test leg costs ~35 s there
// and adds nothing the 2- and 8-tile ratios don't already gate.
BENCHMARK(BM_KernelPerTest)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_KernelPPSFP(benchmark::State& state) {
  const PpsfpMaterial m =
      ppsfp_material(static_cast<std::size_t>(state.range(0)));
  fault::FaultSimulator fsim(m.circuit, m.faults);
  fsim.set_kernel(fault::KernelMode::Full);
  fsim.set_lane_width(sim::LaneWidth::Auto);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detect_batch(m.batch));
  }
  const sim::SimdConfig simd = fsim.simd_config();
  state.counters["tests/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * m.batch.size()),
      benchmark::Counter::kIsRate);
  state.counters["ppsfp_w"] =
      benchmark::Counter(static_cast<double>(simd.lanes()));
  state.counters["lane_bits"] =
      benchmark::Counter(static_cast<double>(simd.bits));
}
BENCHMARK(BM_KernelPPSFP)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PodemPerFault(benchmark::State& state) {
  const netlist::Circuit c = mid_circuit();
  const fault::FaultList fl = fault::FaultList::build(c);
  atpg::Podem podem(c);
  std::size_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        podem.generate(fl.representative(
            static_cast<fault::FaultClassId>(id % fl.num_classes()))));
    ++id;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PodemPerFault);

// ATPG backend per-fault cost across circuit sizes (Arg = gate count;
// the bench/history "atpg" family records the sat/podem ratio per
// size).  Both engines walk the same fault list round-robin so the
// fault mix is identical; the SAT backend amortizes its one-time
// circuit encoding across the incremental per-fault solves, which is
// exactly how the runner uses it under --atpg=sat/auto.
netlist::Circuit sized_circuit(std::size_t gates) {
  gen::GenParams p;
  p.name = "bench";
  p.seed = 12345;
  p.num_inputs = 16;
  p.num_outputs = 16;
  p.num_flip_flops = 64;
  p.num_gates = gates;
  return gen::generate_circuit(p);
}

void BM_AtpgPodem(benchmark::State& state) {
  const netlist::Circuit c =
      sized_circuit(static_cast<std::size_t>(state.range(0)));
  const fault::FaultList fl = fault::FaultList::build(c);
  atpg::Podem podem(c);
  std::size_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        podem.generate(fl.representative(
            static_cast<fault::FaultClassId>(id % fl.num_classes()))));
    ++id;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtpgPodem)->Arg(250)->Arg(1000);

void BM_AtpgSat(benchmark::State& state) {
  const netlist::Circuit c =
      sized_circuit(static_cast<std::size_t>(state.range(0)));
  const fault::FaultList fl = fault::FaultList::build(c);
  atpg::SatBackend sat(c);
  std::size_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sat.generate(fl.representative(
            static_cast<fault::FaultClassId>(id % fl.num_classes()))));
    ++id;
  }
  state.SetItemsProcessed(state.iterations());
  const atpg::SatBackendStats& s = sat.stats();
  state.counters["conflicts/solve"] = benchmark::Counter(
      s.solve_calls > 0
          ? static_cast<double>(s.conflicts) /
                static_cast<double>(s.solve_calls)
          : 0.0);
}
BENCHMARK(BM_AtpgSat)->Arg(250)->Arg(1000);

void BM_AtpgSatTransition(benchmark::State& state) {
  const netlist::Circuit c =
      sized_circuit(static_cast<std::size_t>(state.range(0)));
  const fault::FaultList fl =
      fault::FaultList::build(c, fault::FaultModel::transition());
  atpg::SatBackend sat(c);
  std::size_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sat.generate_transition(fl.representative(
            static_cast<fault::FaultClassId>(id % fl.num_classes()))));
    ++id;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtpgSatTransition)->Arg(250)->Arg(1000);

void BM_BenchParseRoundTrip(benchmark::State& state) {
  const netlist::Circuit c = mid_circuit();
  const std::string text = netlist::to_bench_string(c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist::parse_bench(text, "rt"));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_BenchParseRoundTrip);

}  // namespace

// Custom main: stamp the detected SIMD configuration into the JSON
// context (the "simd" section of the BENCH_kernel.json artifact) before
// running — detected ISA, resolved lane width, and the PPSFP batch
// width (tests packed per wide pass).
int main(int argc, char** argv) {
  const sim::SimdConfig simd = sim::resolve_simd(sim::LaneWidth::Auto);
  benchmark::AddCustomContext("simd_isa", sim::isa_name(simd.isa));
  benchmark::AddCustomContext("simd_lane_bits", std::to_string(simd.bits));
  benchmark::AddCustomContext("simd_ppsfp_tests_per_pass",
                              std::to_string(simd.lanes()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
