// Substrate micro-benchmarks (google-benchmark): throughput of the
// engines everything else is built on.  Not a paper table — use these to
// track performance regressions of the simulator/ATPG kernels.
#include <benchmark/benchmark.h>

#include "atpg/comb_tset.hpp"
#include "atpg/podem.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/circuit_gen.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/bench_writer.hpp"
#include "sim/seq_sim.hpp"
#include "tgen/random_seq.hpp"
#include "util/rng.hpp"

namespace {

using namespace scanc;

netlist::Circuit mid_circuit() {
  gen::GenParams p;
  p.name = "bench";
  p.seed = 12345;
  p.num_inputs = 16;
  p.num_outputs = 16;
  p.num_flip_flops = 64;
  p.num_gates = 1000;
  return gen::generate_circuit(p);
}

void BM_FaultFreeSimulation(benchmark::State& state) {
  const netlist::Circuit c = mid_circuit();
  const sim::Sequence seq =
      tgen::random_test_sequence(c, static_cast<std::size_t>(state.range(0)),
                                 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_fault_free(c, nullptr, seq));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * state.range(0)) *
          static_cast<double>(c.num_gates()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FaultFreeSimulation)->Arg(64)->Arg(256);

void BM_ParallelFaultSimulation(benchmark::State& state) {
  const netlist::Circuit c = mid_circuit();
  const fault::FaultList fl = fault::FaultList::build(c);
  fault::FaultSimulator fsim(c, fl);
  const sim::Sequence seq = tgen::random_test_sequence(c, 64, 11);
  util::Rng rng(3);
  const sim::Vector3 si = sim::random_vector(c.num_flip_flops(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detect_scan_test(si, seq));
  }
  // Faults simulated per second (all classes, 64-frame test).
  state.counters["faults/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(fl.num_classes()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelFaultSimulation);

// Thread-count sweep over the two hottest queries (the BENCH_*.json
// speedup tracker): same work as the serial benchmarks above, fanned
// across the group-execution layer.  Real time is the honest metric for
// a multi-threaded region.
void BM_DetectScanTestThreads(benchmark::State& state) {
  const netlist::Circuit c = mid_circuit();
  const fault::FaultList fl = fault::FaultList::build(c);
  fault::FaultSimulator fsim(c, fl);
  fsim.set_num_threads(static_cast<std::size_t>(state.range(0)));
  const sim::Sequence seq = tgen::random_test_sequence(c, 64, 11);
  util::Rng rng(3);
  const sim::Vector3 si = sim::random_vector(c.num_flip_flops(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detect_scan_test(si, seq));
  }
  state.counters["faults/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(fl.num_classes()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DetectScanTestThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_DetectionTimesThreads(benchmark::State& state) {
  const netlist::Circuit c = mid_circuit();
  const fault::FaultList fl = fault::FaultList::build(c);
  fault::FaultSimulator fsim(c, fl);
  fsim.set_num_threads(static_cast<std::size_t>(state.range(0)));
  const sim::Sequence seq = tgen::random_test_sequence(c, 64, 11);
  util::Rng rng(3);
  const sim::Vector3 si = sim::random_vector(c.num_flip_flops(), rng);
  const fault::FaultSet all = fsim.all_faults();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detection_times(si, seq, all));
  }
  state.counters["faults/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(fl.num_classes()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DetectionTimesThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_DetectionTimesRecording(benchmark::State& state) {
  const netlist::Circuit c = mid_circuit();
  const fault::FaultList fl = fault::FaultList::build(c);
  fault::FaultSimulator fsim(c, fl);
  const sim::Sequence seq = tgen::random_test_sequence(c, 64, 11);
  util::Rng rng(3);
  const sim::Vector3 si = sim::random_vector(c.num_flip_flops(), rng);
  const fault::FaultSet all = fsim.all_faults();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detection_times(si, seq, all));
  }
}
BENCHMARK(BM_DetectionTimesRecording);

void BM_PodemPerFault(benchmark::State& state) {
  const netlist::Circuit c = mid_circuit();
  const fault::FaultList fl = fault::FaultList::build(c);
  atpg::Podem podem(c);
  std::size_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        podem.generate(fl.representative(
            static_cast<fault::FaultClassId>(id % fl.num_classes()))));
    ++id;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PodemPerFault);

void BM_BenchParseRoundTrip(benchmark::State& state) {
  const netlist::Circuit c = mid_circuit();
  const std::string text = netlist::to_bench_string(c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist::parse_bench(text, "rt"));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_BenchParseRoundTrip);

}  // namespace

BENCHMARK_MAIN();
