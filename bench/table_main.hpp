// Shared main() scaffolding for the per-table bench binaries.
//
// Installs a SIGINT/SIGTERM handler that raises the run's cancel token:
// Ctrl-C (or a --time-budget deadline) stops the measurement at the
// next frame boundary, checkpoints every completed phase, prints the
// tables with partial rows marked, and exits 0 — rerunning resumes
// from the journal (docs/robustness.md).
#pragma once

#include <exception>
#include <iostream>

#include "expt/options.hpp"
#include "expt/tables.hpp"
#include "util/cancel.hpp"

namespace scanc::bench {

using TablePrinter = void (*)(const std::vector<expt::CircuitRun>&,
                              std::ostream&);

inline int table_main(int argc, const char* const* argv,
                      TablePrinter printer) {
  try {
    expt::BenchConfig cfg = expt::parse_bench_args(argc, argv);
    if (!cfg.runner.cancel.valid()) {
      cfg.runner.cancel = util::CancelToken::make();
    }
    const util::ScopedSignalCancel on_signal(cfg.runner.cancel);
    const std::vector<expt::CircuitRun> runs = expt::run_configured(cfg);
    printer(runs, std::cout);
    if (cfg.runner.cancel.stop_requested()) {
      std::cerr << "note: run interrupted; completed phases are "
                   "checkpointed, rerun to resume\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace scanc::bench
