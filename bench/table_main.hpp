// Shared main() scaffolding for the per-table bench binaries.
#pragma once

#include <exception>
#include <iostream>

#include "expt/options.hpp"
#include "expt/tables.hpp"

namespace scanc::bench {

using TablePrinter = void (*)(const std::vector<expt::CircuitRun>&,
                              std::ostream&);

inline int table_main(int argc, const char* const* argv,
                      TablePrinter printer) {
  try {
    const expt::BenchConfig cfg = expt::parse_bench_args(argc, argv);
    const std::vector<expt::CircuitRun> runs = expt::run_configured(cfg);
    printer(runs, std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace scanc::bench
