#!/usr/bin/env python3
"""Gate on compaction-service load results (load_gen --json-out).

Validates the scanc-service-load-v1 schema and applies the invariant
gates that must hold on any machine:

  - the daemon survived the run (daemon_alive);
  - no accepted job was lost (every accepted job reached a terminal
    state — done, failed, shed, or quarantined);
  - at least one job completed (the run actually exercised execution).

When a baseline file (bench/BENCH_service_baseline.json) is given, the
relative gates apply too: measured throughput must stay above
``tolerance * baseline`` and p99 latency below ``baseline / tolerance``.
The default tolerance of 0.25 only trips on a 4x regression, which
shared-runner noise cannot produce.

Every missing field is reported by name instead of surfacing as a
traceback.
"""

import argparse
import json
import sys

REQUIRED_FIELDS = [
    "schema", "jobs", "clients", "hostile_pct", "submitted", "accepted",
    "rejected", "hostile", "done", "failed", "shed", "quarantined", "lost",
    "recovered", "reconnects", "p50_ms", "p99_ms", "throughput_done_per_s",
    "seconds", "daemon_alive",
]


def fail(message):
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="load_gen --json-out file")
    parser.add_argument("--baseline", default=None,
                        help="BENCH_service_baseline.json for relative gates")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative gate factor (default 0.25 = 4x slack)")
    args = parser.parse_args()

    results = load_json(args.results)
    problems = []

    for field in REQUIRED_FIELDS:
        if field not in results:
            problems.append(f"missing field '{field}'")
    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        sys.exit(1)

    if results["schema"] != "scanc-service-load-v1":
        problems.append(f"unexpected schema '{results['schema']}'")
    if not results["daemon_alive"]:
        problems.append("daemon did not survive the run")
    if results["lost"] != 0:
        problems.append(f"{results['lost']} accepted job(s) never reached a "
                        "terminal state")
    if results["done"] == 0:
        problems.append("no job completed - the run exercised nothing")
    terminal = (results["done"] + results["failed"] + results["shed"]
                + results["quarantined"])
    if terminal + results["lost"] != results["accepted"]:
        problems.append(
            f"terminal states ({terminal}) + lost ({results['lost']}) != "
            f"accepted ({results['accepted']})")

    if args.baseline:
        base = load_json(args.baseline)
        tol = args.tolerance
        floor = base.get("throughput_done_per_s", 0.0) * tol
        if results["throughput_done_per_s"] < floor:
            problems.append(
                f"throughput {results['throughput_done_per_s']:.2f} done/s "
                f"below floor {floor:.2f} (baseline "
                f"{base.get('throughput_done_per_s')}, tolerance {tol})")
        if base.get("p99_ms") and tol > 0:
            ceil = base["p99_ms"] / tol
            if results["p99_ms"] > ceil:
                problems.append(
                    f"p99 latency {results['p99_ms']:.1f} ms above ceiling "
                    f"{ceil:.1f} (baseline {base['p99_ms']}, tolerance {tol})")

    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        sys.exit(1)

    print(f"ok: {results['done']} done / {results['accepted']} accepted, "
          f"p50 {results['p50_ms']:.1f} ms, p99 {results['p99_ms']:.1f} ms, "
          f"{results['throughput_done_per_s']:.2f} done/s")


if __name__ == "__main__":
    main()
