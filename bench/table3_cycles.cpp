// Regenerates the paper's Table 3: test application time (clock cycles)
// for the [2,3]-style dynamic baseline, the [4] baseline (initial and
// compacted), and the proposed procedure (greedy and random T0; initial
// and compacted), with totals excluding s35932.
#include "table_main.hpp"

int main(int argc, char** argv) {
  return scanc::bench::table_main(argc, argv, scanc::expt::print_table3);
}
