// Quantifies the paper's at-speed claim (the qualitative argument behind
// Table 4): transition (gross-delay) faults need two consecutive
// functional vectors — a launch and a capture — so the [4] baseline's
// length-one tests detect (almost) none of them, while the proposed
// procedure's long tau_seq detects a large share *for free*, using the
// very same stuck-at test set.
#include <cstdio>
#include <exception>

#include "atpg/comb_tset.hpp"
#include "expt/options.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "fault/transition.hpp"
#include "gen/suite.hpp"
#include "tcomp/baselines.hpp"
#include "tcomp/pipeline.hpp"
#include "tgen/greedy_tgen.hpp"

namespace {

using namespace scanc;

util::Bitset set_coverage(fault::TransitionFaultSim& tsim,
                          const tcomp::ScanTestSet& set) {
  util::Bitset covered(
      fault::num_transition_faults(tsim.circuit()));
  for (const tcomp::ScanTest& t : set.tests) {
    covered |= tsim.detect(t.scan_in, t.seq);
  }
  return covered;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    expt::BenchConfig cfg = expt::parse_bench_args(argc, argv);
    if (cfg.circuits.empty()) {
      cfg.circuits = {"s298", "s382", "s820", "b03", "b10"};
    }
    std::printf("Transition-fault coverage of the stuck-at test sets\n");
    std::printf("%-8s %8s | %9s %9s %9s\n", "circuit", "TFs", "[4]comp",
                "propinit", "propcomp");
    for (const std::string& name : cfg.circuits) {
      const auto entry = gen::find_suite_entry(name);
      const netlist::Circuit c = gen::build_suite_circuit(*entry);
      const fault::FaultList fl = fault::FaultList::build(c);
      fault::FaultSimulator fsim(c, fl);
      fault::TransitionFaultSim tsim(c);

      atpg::CombTestSetOptions copt;
      copt.seed = cfg.runner.seed;
      const atpg::CombTestSet comb =
          atpg::generate_comb_test_set(c, fl, copt);
      const tcomp::ScanTestSet b4 = tcomp::comb_initial_set(comb.tests);
      const tcomp::CombineResult b4c = tcomp::combine_tests(fsim, b4);

      tgen::GreedyTgenOptions gopt;
      gopt.seed = cfg.runner.seed;
      gopt.max_length = 1024;
      const auto t0 = tgen::generate_test_sequence(c, fl, gopt);
      const tcomp::PipelineResult pr =
          tcomp::run_pipeline(fsim, t0.sequence, comb.tests);

      const std::size_t total = fault::num_transition_faults(c);
      std::printf("%-8s %8zu | %8.1f%% %8.1f%% %8.1f%%\n", name.c_str(),
                  total,
                  100.0 * static_cast<double>(
                              set_coverage(tsim, b4c.tests).count()) /
                      static_cast<double>(total),
                  100.0 * static_cast<double>(
                              set_coverage(tsim, pr.initial).count()) /
                      static_cast<double>(total),
                  100.0 * static_cast<double>(
                              set_coverage(tsim, pr.compacted).count()) /
                      static_cast<double>(total));
    }
    std::printf(
        "\nNotes.  Length-one tests cannot launch a transition, so the\n"
        "[4] column comes entirely from the longer sequences its\n"
        "combining step created.  The detection model is single-cycle\n"
        "launch-capture with scan-out observed only at a test's end\n"
        "(fault/transition.hpp): effects captured into flip-flops mid-\n"
        "sequence are not credited, which is conservative for the long\n"
        "tau_seq trajectories and favours sets of short tests whose\n"
        "capture cycle is also their scan-out.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
