// Regenerates the paper's Table 4: at-speed primary-input sequence
// lengths (average and range) for the [4] baseline and the proposed
// procedure under both T0 sources.
#include "table_main.hpp"

int main(int argc, char** argv) {
  return scanc::bench::table_main(argc, argv, scanc::expt::print_table4);
}
