#!/usr/bin/env python3
"""Gate on cone-kernel speedup regressions.

Reads a google-benchmark JSON file containing the BM_KernelFull/N and
BM_KernelCone/N timings (the BENCH_kernel.json CI artifact) and compares
the full/cone speedup per block count against the checked-in baseline
(bench/BENCH_kernel_baseline.json).  Fails when a measured speedup drops
below half its baseline value — a >2x regression of the cone kernel
relative to the full one, which absolute-time noise on shared CI runners
cannot produce.

Usage: check_kernel_baseline.py BENCH_kernel.json BENCH_kernel_baseline.json
"""

import json
import sys


def speedups(path):
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if not name.startswith("BM_Kernel") or "/" not in name:
            continue
        kind, arg = name.split("/", 1)
        times[(kind, arg)] = float(bench["real_time"])
    out = {}
    for (kind, arg), full_time in times.items():
        if kind != "BM_KernelFull":
            continue
        cone_time = times.get(("BM_KernelCone", arg))
        if cone_time:
            out[arg] = full_time / cone_time
    return out


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    measured = speedups(sys.argv[1])
    with open(sys.argv[2]) as f:
        baseline = json.load(f)["speedup"]

    ok = True
    for arg, base in sorted(baseline.items(), key=lambda kv: int(kv[0])):
        got = measured.get(arg)
        if got is None:
            print(f"tiles={arg}: MISSING measurement")
            ok = False
            continue
        floor = base / 2.0
        status = "ok" if got >= floor else "REGRESSION"
        print(
            f"tiles={arg}: cone speedup {got:.2f}x "
            f"(baseline {base:.2f}x, floor {floor:.2f}x) {status}"
        )
        ok = ok and got >= floor
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
