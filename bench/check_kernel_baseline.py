#!/usr/bin/env python3
"""Gate on cone-kernel speedup (and efficiency) regressions.

Reads a google-benchmark JSON file containing the BM_KernelFull/N and
BM_KernelCone/N timings (the BENCH_kernel.json CI artifact) and compares
the full/cone speedup per block count against the checked-in baseline
(bench/BENCH_kernel_baseline.json).  A measured speedup below
``tolerance * baseline`` fails; the default tolerance of 0.5 only trips
on a >2x relative regression, which absolute-time noise on shared CI
runners cannot produce.

When the baseline has an ``efficiency`` section, the same tolerance is
applied to the kernel efficiency counters (frames_skipped_ratio,
cache_hit_ratio) that perf_microbench attaches to each benchmark — so a
change that keeps wall time but destroys frame skipping or cache reuse
still fails.  A ``transition`` section has the same shape and gates the
frame-gated transition kernel (BM_KernelTDF): tdf_skip_ratio pins the
activation-aware whole-frame skipping, cache_hit_ratio the shared
fault-free trace reuse.

A ``simd`` section gates the wide-kernel speedups the same way:
``simd.wide`` holds per-tile-count floors for BM_KernelFull/N over
BM_KernelWide/N (the SIMD fault-parallel widening gain) and
``simd.ppsfp`` for BM_KernelPerTest/N over BM_KernelPPSFP/N (the
pattern-parallel batch gain).  These ratios compare two measurements
from the same run, so they are noise-robust like the cone speedups.

Every missing benchmark, field, or baseline key is reported by name
instead of surfacing as a traceback.
"""

import argparse
import json
import sys


def fail(message):
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")


def kernel_benchmarks(path):
    """Returns {name: benchmark-entry} for the BM_Kernel* benchmarks."""
    data = load_json(path)
    if "benchmarks" not in data:
        fail(f"{path} has no 'benchmarks' array - not google-benchmark "
             "JSON output?")
    out = {}
    for bench in data["benchmarks"]:
        name = bench.get("name", "")
        if name.startswith("BM_Kernel") and "/" in name:
            out[name] = bench
    if not out:
        fail(f"{path} contains no BM_Kernel*/N benchmarks")
    return out


def real_time(benchmarks, name, path):
    if name not in benchmarks:
        fail(f"benchmark '{name}' missing from {path}")
    bench = benchmarks[name]
    if "real_time" not in bench:
        fail(f"benchmark '{name}' in {path} has no 'real_time' field")
    return float(bench["real_time"])


def speedups(benchmarks, path):
    out = {}
    for name in benchmarks:
        kind, arg = name.split("/", 1)
        if kind != "BM_KernelFull":
            continue
        full = real_time(benchmarks, name, path)
        cone = real_time(benchmarks, f"BM_KernelCone/{arg}", path)
        if cone <= 0.0:
            fail(f"benchmark 'BM_KernelCone/{arg}' in {path} has "
                 "non-positive real_time")
        out[arg] = full / cone
    return out


def ratio_speedups(benchmarks, path, slow_name, fast_name):
    """{arg: slow_time / fast_time} for args where both exist."""
    out = {}
    for name in benchmarks:
        kind, arg = name.split("/", 1)
        if kind != fast_name or f"{slow_name}/{arg}" not in benchmarks:
            continue
        fast = real_time(benchmarks, name, path)
        if fast <= 0.0:
            fail(f"benchmark '{name}' in {path} has non-positive real_time")
        out[arg] = real_time(benchmarks, f"{slow_name}/{arg}", path) / fast
    return out


def check_speedups(measured, baseline, tolerance, label="cone"):
    ok = True
    for arg, base in sorted(baseline.items(), key=lambda kv: int(kv[0])):
        got = measured.get(arg)
        if got is None:
            print(f"tiles={arg}: MISSING {label} measurement")
            ok = False
            continue
        floor = base * tolerance
        status = "ok" if got >= floor else "REGRESSION"
        print(
            f"tiles={arg}: {label} speedup {got:.2f}x "
            f"(baseline {base:.2f}x, floor {floor:.2f}x) {status}"
        )
        ok = ok and got >= floor
    return ok


def check_efficiency(benchmarks, baseline, tolerance, path):
    """baseline: {benchmark name: {counter: baseline value}}."""
    ok = True
    for name, counters in sorted(baseline.items()):
        if name not in benchmarks:
            print(f"{name}: MISSING benchmark for efficiency check")
            ok = False
            continue
        for counter, base in sorted(counters.items()):
            if counter not in benchmarks[name]:
                print(f"{name}: counter '{counter}' missing from {path}")
                ok = False
                continue
            got = float(benchmarks[name][counter])
            floor = base * tolerance
            status = "ok" if got >= floor else "REGRESSION"
            print(
                f"{name}: {counter} {got:.3f} "
                f"(baseline {base:.3f}, floor {floor:.3f}) {status}"
            )
            ok = ok and got >= floor
    return ok


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("measured", help="BENCH_kernel.json from CI")
    parser.add_argument("baseline", help="BENCH_kernel_baseline.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="fraction of the baseline a measurement may drop to before "
        "failing (default 0.5 = fail below half the baseline)",
    )
    args = parser.parse_args()
    if not 0.0 < args.tolerance <= 1.0:
        fail(f"--tolerance must be in (0, 1], got {args.tolerance}")

    benchmarks = kernel_benchmarks(args.measured)
    baseline = load_json(args.baseline)
    if "speedup" not in baseline:
        fail(f"{args.baseline} has no 'speedup' section")

    ok = check_speedups(
        speedups(benchmarks, args.measured), baseline["speedup"],
        args.tolerance)
    for section in ("efficiency", "transition"):
        if section in baseline:
            ok = check_efficiency(
                benchmarks, baseline[section], args.tolerance,
                args.measured) and ok
    simd = baseline.get("simd", {})
    if "wide" in simd:
        ok = check_speedups(
            ratio_speedups(benchmarks, args.measured,
                           "BM_KernelFull", "BM_KernelWide"),
            simd["wide"], args.tolerance, label="wide") and ok
    if "ppsfp" in simd:
        ok = check_speedups(
            ratio_speedups(benchmarks, args.measured,
                           "BM_KernelPerTest", "BM_KernelPPSFP"),
            simd["ppsfp"], args.tolerance, label="ppsfp") and ok
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
