#!/usr/bin/env bash
# Service soak (CI service-soak job; docs/service.md): ~60 s of mixed
# load at 10% hostile traffic against scanc-serve, with one mid-run
# SIGTERM + restart on the same state dir.  The run passes only if
#
#   - both daemon generations exit 0 (clean drain, no crash),
#   - load_gen exits 0 (daemon alive at the end, every accepted job
#     observed in a terminal state — nothing lost across the restart),
#   - the load report passes bench/check_service_baseline.py's
#     invariant gates,
#   - a scanc-top watch subscriber attached for the whole of
#     generation 1 exits 0 when the drain ends its stream (live
#     introspection under load + mid-drain), and
#   - both generations' --event-log JSONL files pass
#     bench/check_events_schema.py (schema-complete events, per-job
#     monotone sequences).
#
# Usage: ci/service_soak.sh [BUILD_DIR] [OUT_DIR]
# Tunables (env): SOAK_JOBS SOAK_CLIENTS SOAK_HOSTILE_PCT
#                 SOAK_RESTART_AFTER_S SOAK_SEED
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-soak-out}"
JOBS="${SOAK_JOBS:-450}"
CLIENTS="${SOAK_CLIENTS:-6}"
HOSTILE_PCT="${SOAK_HOSTILE_PCT:-10}"
RESTART_AFTER_S="${SOAK_RESTART_AFTER_S:-20}"
SEED="${SOAK_SEED:-11}"

SERVE="$BUILD_DIR/src/svc/scanc-serve"
LOAD_GEN="$BUILD_DIR/bench/load_gen"
TOP="$BUILD_DIR/examples/scanc_top"
for bin in "$SERVE" "$LOAD_GEN" "$TOP"; do
  [ -x "$bin" ] || { echo "[soak] missing binary: $bin" >&2; exit 2; }
done

mkdir -p "$OUT_DIR"
STATE_DIR="$OUT_DIR/state"
# AF_UNIX paths are capped around 108 bytes; keep the socket in /tmp
# rather than a possibly deep CI workspace.
SOCK_DIR="$(mktemp -d /tmp/scanc-soak-XXXXXX)"
SOCK="$SOCK_DIR/serve.sock"
SERVE_PID=""
LOAD_PID=""
TOP_PID=""

cleanup() {
  [ -n "$SERVE_PID" ] && kill -KILL "$SERVE_PID" 2>/dev/null || true
  [ -n "$LOAD_PID" ] && kill -KILL "$LOAD_PID" 2>/dev/null || true
  [ -n "$TOP_PID" ] && kill -KILL "$TOP_PID" 2>/dev/null || true
  rm -rf "$SOCK_DIR"
}
trap cleanup EXIT

start_daemon() { # $1 = metrics output path, $2 = event-log path
  "$SERVE" --socket="$SOCK" --state-dir="$STATE_DIR" \
      --executors=4 --max-queue=32 --metrics-out="$1" \
      --event-log="$2" &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
  done
  echo "[soak] daemon failed to come up on $SOCK" >&2
  return 1
}

stop_daemon() { # clean SIGTERM drain; daemon must exit 0
  kill -TERM "$SERVE_PID"
  local rc=0
  wait "$SERVE_PID" || rc=$?
  SERVE_PID=""
  if [ "$rc" -ne 0 ]; then
    echo "[soak] daemon exited $rc on SIGTERM (expected clean drain)" >&2
    exit 1
  fi
}

echo "[soak] generation 1 up; driving $JOBS jobs / $CLIENTS clients" \
     "at ${HOSTILE_PCT}% hostile (seed $SEED)"
start_daemon "$OUT_DIR/serve_metrics_gen1.json" \
             "$OUT_DIR/events_gen1.jsonl"

# Live watch subscriber for the whole of generation 1: scanc-top rides
# the op:"watch" all-jobs stream under full load and must exit 0 when
# the drain ends the stream (introspection never wedges the daemon).
"$TOP" --socket="$SOCK" --interval=2 --plain \
    > "$OUT_DIR/scanc_top_gen1.txt" &
TOP_PID=$!

"$LOAD_GEN" --socket="$SOCK" --jobs="$JOBS" --clients="$CLIENTS" \
    --hostile-pct="$HOSTILE_PCT" --seed="$SEED" \
    --json-out="$OUT_DIR/load.json" &
LOAD_PID=$!

sleep "$RESTART_AFTER_S"
if ! kill -0 "$LOAD_PID" 2>/dev/null; then
  echo "[soak] load_gen finished before the restart point — raise" \
       "SOAK_JOBS so the restart lands mid-run" >&2
  exit 1
fi
echo "[soak] mid-run SIGTERM: draining generation 1"
stop_daemon
top_rc=0
wait "$TOP_PID" || top_rc=$?
TOP_PID=""
if [ "$top_rc" -ne 0 ]; then
  echo "[soak] scanc-top exited $top_rc (watch stream broke instead of" \
       "ending with the drain)" >&2
  exit 1
fi
echo "[soak] generation 2 up: resuming on the same state dir"
start_daemon "$OUT_DIR/serve_metrics_gen2.json" \
             "$OUT_DIR/events_gen2.jsonl"

load_rc=0
wait "$LOAD_PID" || load_rc=$?
LOAD_PID=""
if [ "$load_rc" -ne 0 ]; then
  echo "[soak] load_gen exited $load_rc (daemon dead or jobs lost)" >&2
  exit 1
fi

echo "[soak] final drain of generation 2"
stop_daemon

python3 bench/check_service_baseline.py "$OUT_DIR/load.json"
python3 bench/check_events_schema.py "$OUT_DIR"/events_gen*.jsonl
echo "[soak] PASS"
