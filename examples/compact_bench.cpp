// Command-line compaction flow for arbitrary .bench netlists: the tool a
// downstream user runs on their own circuit.
//
//   build/examples/compact_bench <file.bench> [options]
//
// Options:
//   --t0=greedy|random     T0 source (default greedy)
//   --t0-length=N          length cap for T0 (default 1024)
//   --seed=N               experiment seed (default 1)
//   --out=FILE             write the compacted test set to FILE
//   --baseline             also run and report the [4] baseline
//   --trace-out=FILE       write a Chrome trace of phase/query spans
//   --metrics-out=FILE     write the run metrics snapshot (JSON)
//   --event-log=FILE       write the structured JSONL event stream
//   --verbose-metrics      print the metrics summary table on stderr
//   --heartbeat=S          progress line every S seconds on stderr
//
// Without a file argument the embedded s27 netlist is used.
// Telemetry details: docs/observability.md.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "atpg/comb_tset.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/embedded.hpp"
#include "netlist/bench_parser.hpp"
#include "tcomp/baselines.hpp"
#include "tcomp/pipeline.hpp"
#include "tgen/greedy_tgen.hpp"
#include "tgen/random_seq.hpp"
#include "util/event_bus.hpp"
#include "util/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace scanc;

  std::string file;
  std::string t0_source = "greedy";
  std::string out_path;
  std::string trace_path;
  std::string metrics_path;
  std::string event_log_path;
  std::size_t t0_length = 1024;
  std::uint64_t seed = 1;
  bool baseline = false;
  bool verbose_metrics = false;
  double heartbeat_seconds = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--t0=", 0) == 0) {
      t0_source = arg.substr(5);
    } else if (arg.rfind("--t0-length=", 0) == 0) {
      t0_length = std::strtoull(arg.c_str() + 12, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--baseline") {
      baseline = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_path = arg.substr(14);
    } else if (arg.rfind("--event-log=", 0) == 0) {
      event_log_path = arg.substr(12);
    } else if (arg == "--verbose-metrics") {
      verbose_metrics = true;
    } else if (arg.rfind("--heartbeat=", 0) == 0) {
      heartbeat_seconds = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 1;
    } else {
      file = arg;
    }
  }

  if (!trace_path.empty() && !obs::open_trace(trace_path)) {
    std::fprintf(stderr, "warning: cannot open trace file %s\n",
                 trace_path.c_str());
  }
  if (!event_log_path.empty() && !obs::open_event_log(event_log_path)) {
    std::fprintf(stderr, "warning: cannot open event log %s\n",
                 event_log_path.c_str());
  }
  obs::Heartbeat heartbeat;
  if (heartbeat_seconds > 0.0) heartbeat.start(heartbeat_seconds);
  // Flush telemetry on every exit path (including errors), so partial
  // runs still leave a loadable trace and snapshot.  Event log closes
  // before the trace (obs::shutdown_sinks) so the last published
  // phase-end events always reach disk.
  const auto flush_obs = [&] {
    heartbeat.stop();
    obs::shutdown_sinks();
    if (!metrics_path.empty() && !obs::write_metrics_file(metrics_path)) {
      std::fprintf(stderr, "warning: cannot write metrics file %s\n",
                   metrics_path.c_str());
    }
    if (verbose_metrics) obs::print_summary(std::cerr);
  };

  try {
    const netlist::Circuit circuit =
        file.empty() ? gen::make_s27() : netlist::load_bench_file(file);
    const fault::FaultList faults = fault::FaultList::build(circuit);
    fault::FaultSimulator fsim(circuit, faults);
    const std::size_t nsv = circuit.num_flip_flops();
    std::printf("%s: %zu PIs, %zu POs, %zu FFs, %zu gates, %zu fault "
                "classes\n",
                circuit.name().c_str(), circuit.num_inputs(),
                circuit.num_outputs(), nsv, circuit.num_gates(),
                faults.num_classes());

    atpg::CombTestSetOptions copt;
    copt.seed = seed;
    const atpg::CombTestSet comb =
        atpg::generate_comb_test_set(circuit, faults, copt);
    std::printf("C: %zu tests cover %zu classes (%zu untestable, "
                "%zu aborted)\n",
                comb.tests.size(), comb.detected.count(),
                comb.proven_untestable, comb.aborted);

    sim::Sequence t0;
    if (t0_source == "random") {
      t0 = tgen::random_test_sequence(circuit, t0_length, seed);
    } else if (t0_source == "greedy") {
      tgen::GreedyTgenOptions gopt;
      gopt.seed = seed;
      gopt.max_length = t0_length;
      t0 = tgen::generate_test_sequence(circuit, faults, gopt).sequence;
    } else {
      std::fprintf(stderr, "unknown --t0 source '%s'\n",
                   t0_source.c_str());
      return 1;
    }
    std::printf("T0 (%s): %zu vectors\n", t0_source.c_str(), t0.length());

    const tcomp::PipelineResult r =
        tcomp::run_pipeline(fsim, t0, comb.tests);
    std::printf("tau_seq: %zu at-speed vectors, %zu classes; +%zu "
                "top-off tests\n",
                r.tau_seq.seq.length(), r.f_seq.count(), r.added_tests);
    std::printf("cycles: initial %llu, compacted %llu; coverage %zu/%zu\n",
                static_cast<unsigned long long>(
                    tcomp::clock_cycles(r.initial, nsv)),
                static_cast<unsigned long long>(
                    tcomp::clock_cycles(r.compacted, nsv)),
                r.final_coverage.count(), faults.num_classes());

    if (baseline) {
      const tcomp::ScanTestSet b4 = tcomp::comb_initial_set(comb.tests);
      const tcomp::CombineResult b4c = tcomp::combine_tests(fsim, b4);
      std::printf("[4] baseline: initial %llu cycles, compacted %llu\n",
                  static_cast<unsigned long long>(
                      tcomp::clock_cycles(b4, nsv)),
                  static_cast<unsigned long long>(
                      tcomp::clock_cycles(b4c.tests, nsv)));
    }

    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
      }
      tcomp::write_test_set(r.compacted, out);
      std::printf("wrote %zu tests to %s\n", r.compacted.size(),
                  out_path.c_str());
    }
    flush_obs();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    flush_obs();
    return 1;
  }
}
