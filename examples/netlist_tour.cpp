// Netlist tour: parse a .bench netlist (from a file or the embedded s27),
// report its structure, simulate a few frames, and write it back out.
//
//   build/examples/netlist_tour [file.bench]
#include <cstdio>
#include <iostream>

#include "gen/embedded.hpp"
#include "netlist/analysis.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/bench_writer.hpp"
#include "sim/seq_sim.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace scanc;
  netlist::Circuit c =
      argc > 1 ? netlist::load_bench_file(argv[1]) : gen::make_s27();

  const netlist::CircuitStats s = netlist::stats(c);
  std::printf("%s: %zu inputs, %zu outputs, %zu flip-flops, %zu gates, "
              "depth %u\n",
              c.name().c_str(), s.inputs, s.outputs, s.flip_flops, s.gates,
              s.depth);

  // Gate-type histogram.
  std::size_t histogram[netlist::kNumGateTypes] = {};
  for (const netlist::Node& n : c.nodes()) {
    ++histogram[static_cast<std::size_t>(n.type)];
  }
  for (int t = 0; t < netlist::kNumGateTypes; ++t) {
    if (histogram[t] == 0) continue;
    std::printf("  %-7s %zu\n",
                std::string(netlist::to_string(
                                static_cast<netlist::GateType>(t)))
                    .c_str(),
                histogram[t]);
  }

  // Structural analysis: shape, duplicates, per-output support.
  const netlist::ShapeStats shape = netlist::shape_stats(c);
  std::printf("\nshape: avg fanin %.2f (max %zu), avg fanout %.2f (max "
              "%zu), %zu fanout stems\n",
              shape.avg_fanin, shape.max_fanin, shape.avg_fanout,
              shape.max_fanout, shape.fanout_stems);
  const auto dups = netlist::duplicate_gates(c);
  std::printf("structurally duplicate gates: %zu\n", dups.size());
  for (const netlist::NodeId po : c.primary_outputs()) {
    const auto sup = netlist::support(c, po);
    std::printf("output %s depends on %zu inputs/flip-flops\n",
                c.node(po).name.c_str(), sup.size());
  }

  // Simulate 4 random frames from the unknown state.
  util::Rng rng(7);
  const sim::Sequence seq = sim::random_sequence(c.num_inputs(), 4, rng);
  const sim::Trace trace = sim::simulate_fault_free(c, nullptr, seq);
  std::printf("\nfault-free simulation from the all-X state:\n");
  for (std::size_t t = 0; t < seq.length(); ++t) {
    std::printf("  t=%zu  in=%s  out=%s  state=%s\n", t,
                sim::to_string(seq.frames[t]).c_str(),
                sim::to_string(trace.po_frames[t]).c_str(),
                sim::to_string(trace.states[t]).c_str());
  }

  std::printf("\nround-tripped netlist:\n");
  netlist::write_bench(c, std::cout);
  return 0;
}
