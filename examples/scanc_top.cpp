// scanc-top — live monitor for a running scanc-serve daemon.
//
//   build/examples/scanc_top --socket=PATH [--interval=S] [--duration=S]
//                            [--plain]
//
// Attaches an op:"watch" stream for every job (id "*") plus a polled
// op:"stats" connection, and renders per-job phase, round, detected
// faults and coverage %, alongside queue depth and registry occupancy.
// With a TTY the screen refreshes in place; --plain appends one table
// per refresh (what the CI soak captures).  Exits 0 when --duration
// elapses or the daemon drains the stream.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "svc/client.hpp"
#include "svc/wire.hpp"

namespace {

using scanc::svc::Client;
using scanc::svc::Json;
using scanc::svc::WireError;

struct JobRow {
  std::string state = "?";
  std::string phase;
  std::uint64_t round = 0;
  std::uint64_t faults = 0;
  std::uint64_t total_faults = 0;  // from the pipeline begin event
  std::uint64_t last_seq = 0;
  std::uint64_t dropped = 0;
  std::uint64_t last_t_us = 0;
};

struct View {
  std::map<std::string, JobRow> jobs;
  std::uint64_t stream_dropped = 0;
  std::uint64_t events_seen = 0;
};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t get_u64(const Json& j, const char* key) {
  const Json* v = j.find(key);
  if (v == nullptr) return 0;
  try {
    return v->as_u64();
  } catch (...) {
    return 0;
  }
}

std::string get_str(const Json& j, const char* key) {
  const Json* v = j.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::string();
}

/// Folds one stream frame into the view.  Returns false on the stream's
/// end frame.
bool apply_frame(View& view, const Json& frame) {
  if (frame.find("end") != nullptr) return false;
  if (const Json* d = frame.find("dropped")) {
    try {
      view.stream_dropped += d->as_u64();
    } catch (...) {
    }
    return true;
  }
  const Json* ev = frame.find("event");
  if (ev == nullptr) return true;
  ++view.events_seen;
  const std::string job = get_str(*ev, "job");
  JobRow& row = view.jobs[job.empty() ? "(local)" : job];
  const std::string kind = get_str(*ev, "kind");
  const std::string phase = get_str(*ev, "phase");
  row.last_seq = get_u64(*ev, "seq");
  row.last_t_us = get_u64(*ev, "t_us");
  if (kind == "job_state") {
    row.state = get_str(*ev, "note");
  } else if (kind == "phase_begin") {
    row.phase = phase;
    if (phase == "pipeline") row.total_faults = get_u64(*ev, "value");
  } else if (kind == "phase_end") {
    row.faults = std::max(row.faults, get_u64(*ev, "faults"));
    if (phase == "pipeline") row.phase = "done";
  } else if (kind == "round") {
    row.round = get_u64(*ev, "value") + 1;
    row.faults = std::max(row.faults, get_u64(*ev, "faults"));
    row.phase = phase;
  }
  return true;
}

void render(const View& view, const Json* stats, bool plain) {
  if (!plain) std::fputs("\x1b[2J\x1b[H", stdout);
  std::printf("scanc-top  events=%llu stream_dropped=%llu",
              static_cast<unsigned long long>(view.events_seen),
              static_cast<unsigned long long>(view.stream_dropped));
  if (stats != nullptr) {
    std::printf("  queued=%llu running=%llu jobs=%llu",
                static_cast<unsigned long long>(get_u64(*stats, "queued")),
                static_cast<unsigned long long>(get_u64(*stats, "running")),
                static_cast<unsigned long long>(get_u64(*stats, "jobs")));
    std::printf("  reg_circuits=%llu reg_idle_sims=%llu",
                static_cast<unsigned long long>(
                    get_u64(*stats, "registry_circuits")),
                static_cast<unsigned long long>(
                    get_u64(*stats, "registry_idle_sims")));
  }
  std::printf("\n%-24s %-12s %-14s %8s %10s %8s %8s\n", "JOB", "STATE",
              "PHASE", "ROUND", "FAULTS", "COV%", "SEQ");
  for (const auto& [id, row] : view.jobs) {
    const double cov = row.total_faults != 0
                           ? 100.0 * static_cast<double>(row.faults) /
                                 static_cast<double>(row.total_faults)
                           : 0.0;
    std::printf("%-24s %-12s %-14s %8llu %10llu %7.1f%% %8llu\n",
                id.c_str(), row.state.c_str(), row.phase.c_str(),
                static_cast<unsigned long long>(row.round),
                static_cast<unsigned long long>(row.faults), cov,
                static_cast<unsigned long long>(row.last_seq));
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  double interval = 1.0;
  double duration = 0.0;  // 0 = until the stream ends
  bool plain = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--socket=", 0) == 0) {
      socket_path = a.substr(9);
    } else if (a.rfind("--interval=", 0) == 0) {
      interval = std::strtod(a.c_str() + 11, nullptr);
    } else if (a.rfind("--duration=", 0) == 0) {
      duration = std::strtod(a.c_str() + 11, nullptr);
    } else if (a == "--plain") {
      plain = true;
    } else {
      std::fprintf(stderr, "scanc-top: unknown argument: %s\n", a.c_str());
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "scanc-top: --socket=PATH is required\n");
    return 2;
  }
  if (interval <= 0.0) interval = 1.0;
  if (isatty(STDOUT_FILENO) == 0) plain = true;

  Client watch;
  Client poll;
  try {
    watch.connect(socket_path);
    poll.connect(socket_path);
    const Json ack = watch.watch_start("*");
    const Json* ok = ack.find("ok");
    if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
      std::fprintf(stderr, "scanc-top: watch rejected: %s\n",
                   ack.dump().c_str());
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scanc-top: cannot attach to %s: %s\n",
                 socket_path.c_str(), e.what());
    return 1;
  }

  View view;
  const double started = now_s();
  double next_render = started;
  bool stream_open = true;
  while (true) {
    if (duration > 0.0 && now_s() - started >= duration) break;
    if (stream_open) {
      try {
        // Drain the stream until the next render tick.
        const double budget = std::max(0.05, next_render - now_s());
        if (auto frame = watch.next_frame(std::min(budget, 0.25))) {
          if (!apply_frame(view, *frame)) {
            stream_open = false;  // daemon drained: one last render
          }
        }
      } catch (const std::exception&) {
        stream_open = false;
      }
    }
    if (now_s() >= next_render || !stream_open) {
      Json stats;
      const Json* stats_ptr = nullptr;
      try {
        stats = poll.stats(5.0);
        stats_ptr = &stats;
      } catch (const std::exception&) {
        // Stats connection gone (drain); render from the stream alone.
      }
      render(view, stats_ptr, plain);
      next_render = now_s() + interval;
    }
    if (!stream_open) break;
    if (duration <= 0.0 && !stream_open) break;
  }
  return 0;
}
