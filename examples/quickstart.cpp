// Quickstart: the full DAC-2001 compaction flow on the (embedded) s27
// benchmark, printing every intermediate artifact.
//
//   build/examples/quickstart
#include <cstdio>

#include "atpg/comb_tset.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/embedded.hpp"
#include "tcomp/pipeline.hpp"
#include "tgen/greedy_tgen.hpp"

int main() {
  using namespace scanc;

  // 1. A circuit.  s27 ships with the library; parse_bench/load_bench_file
  //    accept any ISCAS-style .bench netlist, and gen::generate_circuit
  //    makes synthetic ones.
  const netlist::Circuit circuit = gen::make_s27();
  std::printf("circuit %s: %zu PIs, %zu POs, %zu FFs, %zu gates\n",
              circuit.name().c_str(), circuit.num_inputs(),
              circuit.num_outputs(), circuit.num_flip_flops(),
              circuit.num_gates());

  // 2. The fault universe (collapsed single stuck-at faults).
  const fault::FaultList faults = fault::FaultList::build(circuit);
  fault::FaultSimulator fsim(circuit, faults);
  std::printf("faults: %zu enumerated, %zu collapsed classes\n",
              faults.num_faults(), faults.num_classes());

  // 3. A combinational test set C (scan-in candidates + top-off tests).
  const atpg::CombTestSet comb =
      atpg::generate_comb_test_set(circuit, faults);
  std::printf("combinational test set C: %zu tests, %zu classes covered\n",
              comb.tests.size(), comb.detected.count());

  // 4. A test sequence T0, generated without scan.
  const tgen::GreedyTgenResult t0 =
      tgen::generate_test_sequence(circuit, faults);
  std::printf("T0: length %zu, detects %zu classes without scan\n",
              t0.sequence.length(), t0.detected.count());

  // 5. The four-phase compaction procedure.
  const tcomp::PipelineResult r =
      tcomp::run_pipeline(fsim, t0.sequence, comb.tests);
  std::printf("tau_seq: scan-in + %zu at-speed vectors, detects %zu\n",
              r.tau_seq.seq.length(), r.f_seq.count());
  std::printf("phase 3 added %zu length-one tests\n", r.added_tests);

  const std::size_t nsv = circuit.num_flip_flops();
  std::printf("test application time: %llu cycles initial, %llu compacted\n",
              static_cast<unsigned long long>(
                  tcomp::clock_cycles(r.initial, nsv)),
              static_cast<unsigned long long>(
                  tcomp::clock_cycles(r.compacted, nsv)));
  std::printf("final coverage: %zu / %zu classes\n",
              r.final_coverage.count(), faults.num_classes());
  return 0;
}
