// ATPG tour: PODEM test generation and fault simulation on s27,
// fault by fault — a worked example of the library's substrate layers.
//
//   build/examples/atpg_tour
#include <cstdio>

#include "atpg/comb_tset.hpp"
#include "atpg/podem.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/embedded.hpp"
#include "sim/sequence.hpp"

int main() {
  using namespace scanc;
  const netlist::Circuit c = gen::make_s27();
  const fault::FaultList faults = fault::FaultList::build(c);
  fault::FaultSimulator fsim(c, faults);
  atpg::Podem podem(c);

  std::printf("s27 collapsed fault classes and their PODEM cubes\n");
  std::printf("%-14s %-10s %-6s %-6s\n", "fault", "status", "state",
              "inputs");
  std::size_t detected = 0;
  for (fault::FaultClassId id = 0; id < faults.num_classes(); ++id) {
    const fault::Fault& f = faults.representative(id);
    const atpg::PodemResult r = podem.generate(f);
    const char* status = "aborted";
    std::string state = "-";
    std::string inputs = "-";
    if (r.status == atpg::PodemStatus::Detected) {
      status = "detected";
      state = sim::to_string(r.cube.state);
      inputs = sim::to_string(r.cube.inputs);
      ++detected;
    } else if (r.status == atpg::PodemStatus::Untestable) {
      status = "untestable";
    }
    std::printf("%-14s %-10s %-6s %-6s\n",
                fault::fault_name(f, c).c_str(), status, state.c_str(),
                inputs.c_str());
  }
  std::printf("\n%zu / %zu classes have combinational tests\n", detected,
              faults.num_classes());

  // Verify the full generated set by simulation.
  const atpg::CombTestSet ts = atpg::generate_comb_test_set(c, faults);
  fault::FaultSet covered(fsim.num_classes());
  for (const atpg::CombTest& t : ts.tests) {
    covered |= atpg::detect_comb_test(fsim, t);
  }
  std::printf("compact test set: %zu tests re-verify %zu classes\n",
              ts.tests.size(), covered.count());
  return 0;
}
