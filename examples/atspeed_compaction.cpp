// At-speed compaction study on a synthetic benchmark: compares the
// proposed procedure against the [4] baseline on the metric the paper is
// named for — how much of the test is applied at functional speed.
//
//   build/examples/atspeed_compaction [circuit-name]
//
// circuit-name is any suite circuit (default s298); see gen/suite.hpp.
#include <cstdio>
#include <string>

#include "atpg/comb_tset.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/suite.hpp"
#include "tcomp/baselines.hpp"
#include "tcomp/pipeline.hpp"
#include "tgen/greedy_tgen.hpp"

namespace {

void describe(const char* label, const scanc::tcomp::ScanTestSet& set,
              std::size_t nsv) {
  const scanc::tcomp::AtSpeedStats s = scanc::tcomp::at_speed_stats(set);
  const auto cycles = scanc::tcomp::clock_cycles(set, nsv);
  const std::size_t scan_cycles = (set.size() + 1) * nsv;
  std::printf(
      "%-22s %4zu tests  %6llu cycles (%5.1f%% at-speed)  "
      "avg seq %6.2f  range %zu-%zu\n",
      label, set.size(), static_cast<unsigned long long>(cycles),
      100.0 * static_cast<double>(cycles - scan_cycles) /
          static_cast<double>(cycles),
      s.average, s.min_length, s.max_length);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scanc;
  const std::string name = argc > 1 ? argv[1] : "s298";
  const auto entry = gen::find_suite_entry(name);
  if (!entry) {
    std::fprintf(stderr, "unknown circuit '%s'\n", name.c_str());
    return 1;
  }

  const netlist::Circuit circuit = gen::build_suite_circuit(*entry);
  const fault::FaultList faults = fault::FaultList::build(circuit);
  fault::FaultSimulator fsim(circuit, faults);
  const std::size_t nsv = circuit.num_flip_flops();
  std::printf("%s-like synthetic: %zu FFs, %zu gates, %zu fault classes\n\n",
              name.c_str(), nsv, circuit.num_gates(),
              faults.num_classes());

  const atpg::CombTestSet comb =
      atpg::generate_comb_test_set(circuit, faults);

  // Baseline [4]: combinational initial set, then combining.
  const tcomp::ScanTestSet b4 = tcomp::comb_initial_set(comb.tests);
  describe("[4] initial", b4, nsv);
  const tcomp::CombineResult b4c = tcomp::combine_tests(fsim, b4);
  describe("[4] compacted", b4c.tests, nsv);

  // Proposed: T0 from the greedy generator, four phases.
  tgen::GreedyTgenOptions gopt;
  gopt.max_length = 1024;
  const tgen::GreedyTgenResult t0 =
      tgen::generate_test_sequence(circuit, faults, gopt);
  const tcomp::PipelineResult r =
      tcomp::run_pipeline(fsim, t0.sequence, comb.tests);
  describe("proposed initial", r.initial, nsv);
  describe("proposed compacted", r.compacted, nsv);

  std::printf(
      "\ntau_seq carries %zu at-speed vectors in one test — the long\n"
      "functional sequences that make delay defects observable.\n",
      r.tau_seq.seq.length());
  return 0;
}
