// Fault-diagnosis demo: inject a defect into s27, test it with the
// compacted at-speed test set, and locate the defect from the failing
// responses — the full manufacture-test-diagnose loop in one binary.
//
//   build/examples/diagnosis_demo [fault-class-index]
#include <cstdio>
#include <cstdlib>

#include "atpg/comb_tset.hpp"
#include "diag/diagnosis.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "gen/embedded.hpp"
#include "tcomp/pipeline.hpp"
#include "tgen/greedy_tgen.hpp"

int main(int argc, char** argv) {
  using namespace scanc;
  const netlist::Circuit circuit = gen::make_s27();
  const fault::FaultList faults = fault::FaultList::build(circuit);
  fault::FaultSimulator fsim(circuit, faults);

  // Build the compacted at-speed test set.
  const atpg::CombTestSet comb =
      atpg::generate_comb_test_set(circuit, faults);
  const tgen::GreedyTgenResult t0 =
      tgen::generate_test_sequence(circuit, faults);
  const tcomp::PipelineResult pr =
      tcomp::run_pipeline(fsim, t0.sequence, comb.tests);
  std::printf("test set: %zu tests, %zu at-speed vectors, covers %zu/%zu\n",
              pr.compacted.size(), pr.compacted.total_vectors(),
              pr.final_coverage.count(), faults.num_classes());

  // Inject a defect (default: the first detected class).
  fault::FaultClassId defect = 0;
  if (argc > 1) {
    defect = static_cast<fault::FaultClassId>(std::strtoul(argv[1], nullptr, 10));
    if (defect >= faults.num_classes()) {
      std::fprintf(stderr, "class index out of range (0..%zu)\n",
                   faults.num_classes() - 1);
      return 1;
    }
  } else {
    while (defect < faults.num_classes() &&
           !pr.final_coverage.test(defect)) {
      ++defect;
    }
  }
  std::printf("injected defect: %s (class %u)\n",
              fault::fault_name(faults.representative(defect),
                                circuit)
                  .c_str(),
              defect);

  // "Manufacture test": collect the failing device's responses.
  const diag::ObservedResponses obs =
      diag::simulate_defect(circuit, faults, defect, pr.compacted);

  // Diagnose.
  const diag::DiagnosisResult r =
      diag::diagnose(fsim, pr.compacted, obs);
  std::printf("failing tests: %zu / %zu\n", r.failing_tests,
              pr.compacted.size());
  std::printf("candidates consistent with every response:\n");
  for (const diag::Candidate& c : r.candidates) {
    std::printf("  %-14s explains %zu failing tests%s\n",
                fault::fault_name(faults.representative(c.fault), circuit)
                    .c_str(),
                c.explained_failures,
                c.fault == defect ? "   <-- injected" : "");
  }
  return 0;
}
